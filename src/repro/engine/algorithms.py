"""Built-in algorithm registrations.

Imported lazily by the registry on first lookup.  Each entry binds a
registry name to its engine entry point with metadata: a one-line
description, default parameters, and the execution backends it supports.
Afforest and Shiloach–Vishkin dispatch to the backend-agnostic pipelines
in :mod:`repro.engine.pipelines`; the remaining algorithms wrap their
vectorized implementations (which all return the unified
:class:`~repro.engine.result.CCResult`).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.bfs_cc import bfs_cc
from repro.baselines.dobfs_cc import dobfs_cc
from repro.baselines.label_propagation import (
    label_propagation,
    label_propagation_datadriven,
)
from repro.distributed.dist_cc import distributed_components
from repro.engine.backends import ExecutionBackend
from repro.engine.pipelines import afforest_pipeline, sv_pipeline
from repro.engine.registry import register
from repro.engine.result import CCResult
from repro.graph.csr import CSRGraph
from repro.unionfind.sequential import sequential_components

#: substrates the backend-agnostic pipelines run on; the remaining
#: algorithms wrap vectorized implementations and stay vectorized-only.
PIPELINE_BACKENDS = ("vectorized", "simulated", "process")


@register(
    "afforest",
    description="Afforest: neighbour-round sampling + component skipping "
    "(the paper's algorithm, Fig. 5)",
    backends=PIPELINE_BACKENDS,
    instrumented=True,
)
def _run_afforest(graph: CSRGraph, backend: ExecutionBackend, **params) -> CCResult:
    """Engine entry point for Afforest."""
    return afforest_pipeline(graph, backend, **params)


@register(
    "afforest-noskip",
    description="Afforest with large-component skipping disabled "
    "(the 'no skip' configuration of Figs. 7b/8b)",
    defaults={"skip_largest": False},
    backends=PIPELINE_BACKENDS,
    instrumented=True,
)
def _run_afforest_noskip(
    graph: CSRGraph, backend: ExecutionBackend, **params
) -> CCResult:
    """Engine entry point for Afforest without skipping."""
    return afforest_pipeline(graph, backend, **params)


@register(
    "sv",
    description="Shiloach-Vishkin tree hooking (GAP formulation): "
    "hook + shortcut over every edge per iteration",
    backends=PIPELINE_BACKENDS,
    instrumented=True,
)
def _run_sv(graph: CSRGraph, backend: ExecutionBackend, **params) -> CCResult:
    """Engine entry point for Shiloach–Vishkin."""
    return sv_pipeline(graph, backend, **params)


@register(
    "lp",
    description="synchronous min-label propagation (O(D*|E|) work)",
)
def _run_lp(graph: CSRGraph, backend: ExecutionBackend, **params) -> CCResult:
    """Engine entry point for synchronous label propagation."""
    return label_propagation(graph, **params)


@register(
    "lp-datadriven",
    description="data-driven (frontier) min-label propagation",
)
def _run_lp_datadriven(
    graph: CSRGraph, backend: ExecutionBackend, **params
) -> CCResult:
    """Engine entry point for frontier label propagation."""
    return label_propagation_datadriven(graph, **params)


@register(
    "bfs",
    description="per-component parallel BFS (linear work, serial over "
    "components)",
)
def _run_bfs(graph: CSRGraph, backend: ExecutionBackend, **params) -> CCResult:
    """Engine entry point for BFS-CC."""
    return bfs_cc(graph, **params)


@register(
    "dobfs",
    description="direction-optimizing BFS (Beamer et al.): top-down / "
    "bottom-up switching",
)
def _run_dobfs(graph: CSRGraph, backend: ExecutionBackend, **params) -> CCResult:
    """Engine entry point for DOBFS-CC."""
    return dobfs_cc(graph, **params)


@register(
    "distributed",
    description="distributed forest reduction over a simulated "
    "communicator (local Afforest + log2(R) merge supersteps)",
)
def _run_distributed(
    graph: CSRGraph, backend: ExecutionBackend, **params
) -> CCResult:
    """Engine entry point for distributed CC (converts DistCCResult)."""
    res = distributed_components(graph, **params)
    return CCResult(
        labels=res.labels,
        counters={
            "num_ranks": res.num_ranks,
            "merge_rounds": res.merge_rounds,
            "bytes_sent": res.comm_stats.bytes_sent,
            "messages": res.comm_stats.messages,
        },
    )


@register(
    "sequential",
    description="sequential union-find reference (exact, single-threaded)",
)
def _run_sequential(
    graph: CSRGraph, backend: ExecutionBackend, **params
) -> CCResult:
    """Engine entry point for the sequential union-find reference."""
    labels = np.asarray(sequential_components(graph, **params))
    return CCResult(labels=labels)
