"""Built-in algorithm registrations.

Imported lazily by the registry on first lookup.  Each entry binds a
registry name to its engine entry point with metadata: a one-line
description, default parameters, and the execution backends it supports.
The classical algorithms are *canonical plans* — fixed points of the
sampling × finish space (:mod:`repro.engine.plan`) whose composed
execution is bit-identical to the historical monolithic pipelines; the
``auto`` meta-algorithm probes the graph and selects a plan at runtime;
only the distributed and sequential references remain single-substrate
wrappers (all return the unified :class:`~repro.engine.result.CCResult`).

Composed plan names (``"kout+sv"`` and friends) need no registration:
:func:`repro.engine.registry.get_algorithm` resolves any
``<sampling>+<finish>`` name through the plan registry directly.
"""

from __future__ import annotations

import numpy as np

from repro.engine.auto import auto_components
from repro.engine.backends import DistributedBackend, ExecutionBackend
from repro.engine.finish import DEFAULT_ALPHA, DEFAULT_BETA
from repro.engine.plan import PLAN_BACKENDS, run_plan
from repro.engine.registry import register
from repro.engine.result import CCResult
from repro.graph.csr import CSRGraph
from repro.unionfind.sequential import sequential_components

#: substrates the composed plans run on; the remaining algorithms wrap
#: vectorized implementations and stay vectorized-only.
PIPELINE_BACKENDS = PLAN_BACKENDS


@register(
    "afforest",
    description="Afforest: neighbour-round sampling + component skipping "
    "(the paper's algorithm, Fig. 5; canonical plan kout+settle)",
    backends=PIPELINE_BACKENDS,
    instrumented=True,
)
def _run_afforest(graph: CSRGraph, backend: ExecutionBackend, **params) -> CCResult:
    """Engine entry point for Afforest."""
    return run_plan("kout+settle", graph, backend, **params)


@register(
    "afforest-noskip",
    description="Afforest with large-component skipping disabled "
    "(the 'no skip' configuration of Figs. 7b/8b)",
    defaults={"skip_largest": False},
    backends=PIPELINE_BACKENDS,
    instrumented=True,
)
def _run_afforest_noskip(
    graph: CSRGraph, backend: ExecutionBackend, **params
) -> CCResult:
    """Engine entry point for Afforest without skipping."""
    return run_plan("kout+settle", graph, backend, **params)


@register(
    "sv",
    description="Shiloach-Vishkin tree hooking (GAP formulation): "
    "hook + shortcut over every edge per iteration",
    backends=PIPELINE_BACKENDS,
    instrumented=True,
)
def _run_sv(graph: CSRGraph, backend: ExecutionBackend, **params) -> CCResult:
    """Engine entry point for Shiloach–Vishkin."""
    return run_plan("none+sv", graph, backend, **params)


@register(
    "fastsv",
    description="FastSV-style scatter-min hooking with per-iteration "
    "pointer jumping (canonical plan none+fastsv)",
    backends=PIPELINE_BACKENDS,
    instrumented=True,
)
def _run_fastsv(graph: CSRGraph, backend: ExecutionBackend, **params) -> CCResult:
    """Engine entry point for FastSV."""
    return run_plan("none+fastsv", graph, backend, **params)


@register(
    "lp",
    description="synchronous min-label propagation (O(D*|E|) work)",
    backends=PIPELINE_BACKENDS,
    instrumented=True,
)
def _run_lp(graph: CSRGraph, backend: ExecutionBackend, **params) -> CCResult:
    """Engine entry point for synchronous label propagation."""
    return run_plan("none+lp", graph, backend, **params)


@register(
    "lp-datadriven",
    description="data-driven (frontier) min-label propagation",
    backends=PIPELINE_BACKENDS,
    instrumented=True,
)
def _run_lp_datadriven(
    graph: CSRGraph, backend: ExecutionBackend, **params
) -> CCResult:
    """Engine entry point for frontier label propagation."""
    return run_plan("none+lp-datadriven", graph, backend, **params)


@register(
    "bfs",
    description="per-component parallel BFS (linear work, serial over "
    "components)",
    backends=PIPELINE_BACKENDS,
    instrumented=True,
)
def _run_bfs(graph: CSRGraph, backend: ExecutionBackend, **params) -> CCResult:
    """Engine entry point for BFS-CC."""
    return run_plan("none+bfs", graph, backend, **params)


@register(
    "dobfs",
    description="direction-optimizing BFS (Beamer et al.): top-down / "
    "bottom-up switching",
    defaults={"alpha": DEFAULT_ALPHA, "beta": DEFAULT_BETA},
    backends=PIPELINE_BACKENDS,
    instrumented=True,
)
def _run_dobfs(graph: CSRGraph, backend: ExecutionBackend, **params) -> CCResult:
    """Engine entry point for DOBFS-CC."""
    return run_plan("none+dobfs", graph, backend, **params)


@register(
    "auto",
    description="adaptive meta-algorithm: probe degree skew, "
    "pseudo-diameter and giant-component coverage, then run the "
    "selected plan",
    backends=PIPELINE_BACKENDS,
    instrumented=True,
)
def _run_auto(graph: CSRGraph, backend: ExecutionBackend, **params) -> CCResult:
    """Engine entry point for runtime plan selection."""
    return auto_components(graph, backend, **params)


@register(
    "distributed",
    description="delta-exchange fastsv over simulated ranks (edge shards "
    "+ BSP supersteps shipping only changed labels)",
)
def _run_distributed(
    graph: CSRGraph,
    backend: ExecutionBackend,
    *,
    num_ranks: int = 4,
    partition: str = "block",
    **params,
) -> CCResult:
    """Engine entry point for distributed CC.

    Runs the ``fastsv`` finish on an internally constructed
    :class:`~repro.engine.backends.DistributedBackend` so the historical
    ``engine.run("distributed", g, num_ranks=8)`` call keeps working; the
    caller-selected outer backend only hosts instrumentation.  Prefer
    ``engine.run(g, plan=..., backend="distributed", ranks=R)`` in new
    code — it opens the whole plan space.
    """
    dist = DistributedBackend(ranks=num_ranks, partition=partition)
    dist.bind(backend.instr)
    result = run_plan("none+fastsv", graph, dist, **params)
    result.labels = dist.detach_labels(result.labels)
    stats = dist.comm.stats
    result.counters.update(
        {
            "num_ranks": num_ranks,
            "merge_rounds": stats.supersteps,
            "bytes_sent": stats.bytes_sent,
            "messages": stats.messages,
        }
    )
    return result


@register(
    "sequential",
    description="sequential union-find reference (exact, single-threaded)",
)
def _run_sequential(
    graph: CSRGraph, backend: ExecutionBackend, **params
) -> CCResult:
    """Engine entry point for the sequential union-find reference."""
    labels = np.asarray(sequential_components(graph, **params))
    return CCResult(labels=labels)
