"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch a single type at an API boundary.  Specific subclasses exist for the
three failure domains: malformed graph inputs, violated algorithm invariants
(which indicate a library bug or deliberately adversarial misuse of low-level
primitives), and misconfigured execution parameters.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """Raised when graph input data is structurally invalid.

    Examples: a CSR index array that is not monotone, an edge array referring
    to vertices outside ``[0, n)``, or a file in an unrecognised format.
    """


class InvariantViolationError(ReproError):
    """Raised when a runtime check detects a broken algorithm invariant.

    The central invariant of the Afforest/SV family is Invariant 1 of the
    paper: ``pi[x] <= x`` for every vertex ``x``.  Checks are only performed
    when explicitly requested (debug/validation paths), never in hot kernels.
    """


class ConfigurationError(ReproError):
    """Raised for invalid execution parameters.

    Examples: a non-positive worker count for the simulated machine, a
    sampling probability outside ``(0, 1]``, or a negative number of
    neighbour rounds.
    """


class ConvergenceError(ReproError):
    """Raised when an iterative algorithm exceeds its iteration safety cap.

    The parallel algorithms in this library all provably converge; the cap
    exists to convert a latent bug into a loud failure instead of a hang.
    """
