"""Library-wide constants and dtype conventions.

Vertex identifiers and parent pointers are 64-bit signed integers throughout.
The GAP benchmark suite (and the paper's implementation derived from it) uses
32-bit ids for most graphs, but 64-bit avoids overflow traps on synthetic
sweeps and keeps arithmetic uniform; the work-efficiency results the library
measures are unaffected by id width.
"""

from __future__ import annotations

import numpy as np

#: dtype used for vertex identifiers, CSR indices and parent (pi) arrays.
VERTEX_DTYPE = np.int64

#: Narrow dtype used for parent (pi) arrays when the vertex count permits:
#: halving the label width halves the hot loops' memory traffic, and labels
#: are widened back to VERTEX_DTYPE before results escape the engine.
NARROW_VERTEX_DTYPE = np.int32

#: Largest vertex count eligible for NARROW_VERTEX_DTYPE labels.  The BFS
#: pipelines store the out-of-range sentinel ``n`` in the parent array, so
#: ``n`` itself (not just ``n - 1``) must be representable.
NARROW_LABEL_LIMIT = 2**31 - 1

#: Label-width policies accepted by ``ExecutionBackend(label_dtype=...)``:
#: ``auto`` narrows to NARROW_VERTEX_DTYPE whenever the graph fits (falling
#: back to VERTEX_DTYPE above NARROW_LABEL_LIMIT), ``wide`` always uses
#: VERTEX_DTYPE.
LABEL_DTYPE_POLICIES = ("auto", "wide")

#: dtype used for per-vertex/edge counters collected by instrumented kernels.
COUNTER_DTYPE = np.int64

#: Sentinel for "no vertex" (e.g. unvisited BFS parents).
NO_VERTEX = np.int64(-1)

#: Default number of neighbour-sampling rounds in Afforest (paper Sec. VI-A:
#: "Based on the analysis in Section V, we set the value of neighbor_rounds
#: ... to 2").
DEFAULT_NEIGHBOR_ROUNDS = 2

#: Default number of random probes of the parent array used to identify the
#: largest intermediate component (paper Sec. IV-E: "randomly sampling pi a
#: constant number of times").
DEFAULT_SKIP_SAMPLE_SIZE = 1024

#: Iteration safety cap multiplier for provably-convergent loops: loops abort
#: with ConvergenceError after ``cap_factor * n + cap_slack`` iterations.
ITERATION_CAP_FACTOR = 8
ITERATION_CAP_SLACK = 64

#: Default per-chunk size used by the simulated machine's static scheduler.
DEFAULT_CHUNK_SIZE = 4096
