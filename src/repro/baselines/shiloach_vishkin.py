"""Shiloach–Vishkin connected components (paper Fig. 1, GAP formulation).

Each outer iteration performs a *hook* pass over every edge — ``(u, v)``
hooks ``π(v)`` under ``π(u)`` when ``π(u) < π(v)`` and ``π(v)`` is a root —
followed by a *shortcut* pass compressing every vertex's path.  The
algorithm converges when a full iteration changes nothing; unlike Afforest,
every edge is reprocessed in every iteration, which is exactly the
work-inefficiency the paper targets.

Variants:

- :func:`shiloach_vishkin` — vectorized, CSR input (the GAP CPU baseline);
- :func:`shiloach_vishkin_edgelist` — vectorized, flat COO input (the
  Soman et al. GPU layout);
- :func:`sv_simulated` — generator kernels on the simulated machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

import numpy as np

from repro.constants import ITERATION_CAP_FACTOR, ITERATION_CAP_SLACK, VERTEX_DTYPE
from repro.core.compress import compress_all, compress_kernel
from repro.errors import ConfigurationError, ConvergenceError
from repro.graph.csr import CSRGraph
from repro.parallel.machine import KernelContext, SimulatedMachine
from repro.parallel.metrics import RunStats
from repro.unionfind.parent import ParentArray


@dataclass
class SVResult:
    """Outcome of a Shiloach–Vishkin run."""

    labels: np.ndarray
    iterations: int
    edges_processed: int  # directed edge examinations summed over iterations
    max_tree_depth: int = 0  # deepest tree observed before any shortcut
    run_stats: RunStats | None = None
    depth_per_iteration: list[int] = field(default_factory=list)

    @property
    def num_components(self) -> int:
        return int(np.unique(self.labels).shape[0])


def _hook_pass(pi: np.ndarray, src: np.ndarray, dst: np.ndarray) -> bool:
    """One vectorized hook pass; True if any parent changed.

    Conflicting hooks onto the same root resolve by scatter-min — the batch
    analogue of "one competing edge's write wins per iteration" (Fig. 1
    commentary), biased to the smallest label exactly like the CAS variant.
    """
    cu = pi[src]
    cv = pi[dst]
    mask = (cu < cv) & (pi[cv] == cv)
    if not mask.any():
        return False
    np.minimum.at(pi, cv[mask], cu[mask])
    return True


def _sv_run(
    pi: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    track_depth: bool,
    shortcut: str = "full",
) -> SVResult:
    if shortcut not in ("full", "single"):
        raise ConfigurationError(
            f"shortcut must be 'full' or 'single', got {shortcut!r}"
        )
    n = pi.shape[0]
    cap = ITERATION_CAP_FACTOR * n + ITERATION_CAP_SLACK
    iterations = 0
    edges = 0
    depths: list[int] = []
    max_depth = 0
    while True:
        iterations += 1
        if iterations > cap:
            raise ConvergenceError(f"SV exceeded {cap} iterations")
        changed = _hook_pass(pi, src, dst)
        edges += int(src.shape[0])
        if track_depth:
            d = ParentArray(pi).max_depth()
            depths.append(d)
            max_depth = max(max_depth, d)
        if shortcut == "full":
            compress_all(pi)
        else:
            # The original formulation's single shortcut step per
            # iteration: pi <- pi[pi] once.  Trees shrink gradually and
            # convergence takes more iterations than GAP's full compress.
            pi[:] = pi[pi]
        if not changed:
            # With single-step shortcutting the trees may still be deep;
            # converged means no more hooks, so finish compressing now.
            if shortcut == "single":
                compress_all(pi)
            break
    return SVResult(
        labels=pi,
        iterations=iterations,
        edges_processed=edges,
        max_tree_depth=max_depth,
        depth_per_iteration=depths,
    )


def shiloach_vishkin(
    graph: CSRGraph, *, track_depth: bool = False, shortcut: str = "full"
) -> SVResult:
    """SV over a CSR graph (vectorized).

    ``track_depth`` records the maximum tree depth before each shortcut —
    the Table II statistic — at the cost of an O(n) scan per iteration.
    ``shortcut`` selects full compression per iteration (GAP's
    formulation, the default) or the original algorithm's single
    ``pi <- pi[pi]`` step.
    """
    n = graph.num_vertices
    pi = np.arange(n, dtype=VERTEX_DTYPE)
    if n == 0:
        return SVResult(labels=pi, iterations=0, edges_processed=0)
    src, dst = graph.edge_array()
    return _sv_run(pi, src, dst, track_depth, shortcut)


def shiloach_vishkin_edgelist(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int,
    *,
    track_depth: bool = False,
) -> SVResult:
    """SV over a flat directed edge list (the GPU data layout).

    Semantically identical to :func:`shiloach_vishkin`; exists so the
    layout ablation can charge CSR-expansion cost to the CSR variant and
    none to this one, mirroring the CSR-vs-edge-list GPU comparison.
    """
    pi = np.arange(num_vertices, dtype=VERTEX_DTYPE)
    if num_vertices == 0:
        return SVResult(labels=pi, iterations=0, edges_processed=0)
    src = np.ascontiguousarray(src, dtype=VERTEX_DTYPE)
    dst = np.ascontiguousarray(dst, dtype=VERTEX_DTYPE)
    return _sv_run(pi, src, dst, track_depth)


# --------------------------------------------------------------------- #
# simulated-machine variant
# --------------------------------------------------------------------- #


def _hook_kernel(
    ctx: KernelContext,
    e: int,
    pi: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    changed: dict,
) -> Generator[None, None, None]:
    """SV hook for one directed edge, concurrent semantics.

    The hook is the Fig. 1 line-8 assignment ``π(π(v)) <- π(u)`` guarded to
    roots and performed with CAS; losers simply retry next outer iteration,
    as in the original algorithm.
    """
    u = int(src[e])
    v = int(dst[e])
    cu = yield from ctx.read(pi, u)
    cv = yield from ctx.read(pi, v)
    if cu < cv:
        pcv = yield from ctx.read(pi, cv)
        if pcv == cv:
            ok = yield from ctx.cas(pi, cv, cv, cu)
            if ok:
                changed["flag"] = True


def sv_simulated(
    graph: CSRGraph,
    machine: SimulatedMachine,
) -> SVResult:
    """SV on the simulated parallel machine (instrumented).

    Phase labels: ``I`` init, then per iteration ``H<i>`` hook and ``S<i>``
    shortcut (Fig. 7a's repeating band structure).
    """
    n = graph.num_vertices
    pi = np.empty(n, dtype=VERTEX_DTYPE)
    if n == 0:
        return SVResult(labels=pi, iterations=0, edges_processed=0,
                        run_stats=machine.stats)
    src, dst = graph.edge_array()

    def init_kernel(ctx, v, pi_):
        yield from ctx.write(pi_, v, v)

    machine.parallel_for(n, init_kernel, pi, phase="I")
    cap = ITERATION_CAP_FACTOR * n + ITERATION_CAP_SLACK
    iterations = 0
    edges = 0
    while True:
        iterations += 1
        if iterations > cap:
            raise ConvergenceError(f"sv_simulated exceeded {cap} iterations")
        changed = {"flag": False}
        machine.parallel_for(
            src.shape[0], _hook_kernel, pi, src, dst, changed,
            phase=f"H{iterations}",
        )
        edges += int(src.shape[0])
        machine.parallel_for(n, compress_kernel, pi, phase=f"S{iterations}")
        if not changed["flag"]:
            break
    return SVResult(
        labels=pi,
        iterations=iterations,
        edges_processed=edges,
        run_stats=machine.stats,
    )
