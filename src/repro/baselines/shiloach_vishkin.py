"""Shiloach–Vishkin connected components (paper Fig. 1, GAP formulation).

Each outer iteration performs a *hook* pass over every edge — ``(u, v)``
hooks ``π(v)`` under ``π(u)`` when ``π(u) < π(v)`` and ``π(v)`` is a root —
followed by a *shortcut* pass compressing every vertex's path.  The
algorithm converges when a full iteration changes nothing; unlike Afforest,
every edge is reprocessed in every iteration, which is exactly the
work-inefficiency the paper targets.

The hook/shortcut pipeline is implemented exactly once, in
:func:`repro.engine.pipelines.sv_pipeline_edges`, against the
:class:`~repro.engine.backends.ExecutionBackend` primitives.  The entry
points here select input layout and substrate:

- :func:`shiloach_vishkin` — vectorized, CSR input (the GAP CPU baseline);
- :func:`shiloach_vishkin_edgelist` — vectorized, flat COO input (the
  Soman et al. GPU layout).

For other substrates call the engine directly, e.g.
``engine.run("sv", graph, backend=SimulatedBackend(machine))``.
"""

from __future__ import annotations

import numpy as np

from repro.engine import run as _engine_run
from repro.engine.backends import VectorizedBackend
from repro.engine.pipelines import sv_pipeline_edges
from repro.engine.result import CCResult
from repro.graph.csr import CSRGraph

#: Back-compat alias — SV runs return the unified engine record.
SVResult = CCResult


def shiloach_vishkin(
    graph: CSRGraph, *, track_depth: bool = False, shortcut: str = "full"
) -> CCResult:
    """SV over a CSR graph (vectorized).

    ``track_depth`` records the maximum tree depth before each shortcut —
    the Table II statistic — at the cost of an O(n) scan per iteration.
    ``shortcut`` selects full compression per iteration (GAP's
    formulation, the default) or the original algorithm's single
    ``pi <- pi[pi]`` step.
    """
    return _engine_run(
        "sv", graph, track_depth=track_depth, shortcut=shortcut
    )


def shiloach_vishkin_edgelist(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int,
    *,
    track_depth: bool = False,
) -> CCResult:
    """SV over a flat directed edge list (the GPU data layout).

    Semantically identical to :func:`shiloach_vishkin`; exists so the
    layout ablation can charge CSR-expansion cost to the CSR variant and
    none to this one, mirroring the CSR-vs-edge-list GPU comparison.
    """
    result = sv_pipeline_edges(
        VectorizedBackend(), num_vertices, src, dst, track_depth=track_depth
    )
    result.algorithm = "sv"
    result.backend = "vectorized"
    return result
