"""BFS-based connected components (paper Sec. II-B).

Components are identified one at a time: pick an unvisited seed, run a
parallel (frontier-expanded) BFS labelling everything reached, repeat.
Each edge is touched once — linear work — but components are processed
*serially*, which is the weakness Fig. 8c exposes: runtime grows with the
number of components.
"""

from __future__ import annotations

import numpy as np

from repro.constants import NO_VERTEX, VERTEX_DTYPE
from repro.engine.result import CCResult
from repro.graph.csr import CSRGraph
from repro.nputil import segment_ranges

#: Back-compat alias — BFS-CC runs return the unified engine record.
BFSCCResult = CCResult


def _bfs_label(
    graph: CSRGraph,
    labels: np.ndarray,
    seed: int,
    step_edges: list[int],
) -> tuple[int, int]:
    """Label every vertex reachable from ``seed``; returns (edges, steps)."""
    indptr, indices = graph.indptr, graph.indices
    label = int(seed)
    labels[seed] = label
    frontier = np.asarray([seed], dtype=VERTEX_DTYPE)
    edges = 0
    steps = 0
    while frontier.size:
        steps += 1
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        offsets = np.repeat(starts, counts) + segment_ranges(counts)
        nbrs = indices[offsets]
        edges += total
        step_edges.append(total)
        fresh = nbrs[labels[nbrs] == int(NO_VERTEX)]
        if fresh.size == 0:
            break
        fresh = np.unique(fresh)
        labels[fresh] = label
        frontier = fresh
    return edges, steps


def bfs_cc(graph: CSRGraph) -> CCResult:
    """Connected components via repeated parallel BFS."""
    n = graph.num_vertices
    labels = np.full(n, int(NO_VERTEX), dtype=VERTEX_DTYPE)
    edges = 0
    steps = 0
    components = 0
    step_edges: list[int] = []
    # Seeds are scanned in id order; the cursor never revisits labelled
    # prefix entries, so the scan is O(n) total.
    cursor = 0
    while cursor < n:
        if labels[cursor] != int(NO_VERTEX):
            cursor += 1
            continue
        components += 1
        e, s = _bfs_label(graph, labels, cursor, step_edges)
        edges += e
        steps += s
        cursor += 1
    # step_edges: edges examined per frontier expansion, in execution order
    # — the per-parallel-phase work profile used by the scaling model
    # (Fig. 8b).  num_components is derived from the labeling (one unique
    # seed label per component).
    return CCResult(
        labels=labels,
        edges_processed=edges,
        bfs_steps=steps,
        step_edges=step_edges,
    )
