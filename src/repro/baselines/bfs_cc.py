"""BFS-based connected components (paper Sec. II-B) — deprecated shim.

Components are identified one at a time: pick an unvisited seed, run a
parallel (frontier-expanded) BFS labelling everything reached, repeat.
Each edge is touched once — linear work — but components are processed
*serially*, which is the weakness Fig. 8c exposes: runtime grows with the
number of components.

The algorithm is implemented exactly once, as a backend-agnostic pipeline
(:func:`repro.engine.pipelines.bfs_pipeline`); the entry point here is a
thin deprecated shim over :func:`repro.engine.run` kept for backward
compatibility — prefer ``engine.run("bfs", graph)`` in new code.
"""

from __future__ import annotations

from repro.engine import run as _engine_run
from repro.engine.result import CCResult
from repro.graph.csr import CSRGraph

#: Back-compat alias — BFS-CC runs return the unified engine record.
BFSCCResult = CCResult


def bfs_cc(graph: CSRGraph) -> CCResult:
    """Connected components via repeated parallel BFS (vectorized).

    .. deprecated:: 1.2
        Equivalent to ``engine.run("bfs", graph)``; prefer the engine
        call in new code — it exposes backend selection and telemetry.
    """
    return _engine_run("bfs", graph)
