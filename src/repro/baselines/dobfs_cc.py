"""Direction-optimizing BFS connected components (Beamer et al. [1, 7]).

Like :mod:`~repro.baselines.bfs_cc` but each BFS step chooses between

- **top-down**: expand the frontier's neighbour lists (work proportional to
  frontier out-degree), and
- **bottom-up**: every unvisited vertex scans its own neighbours and stops
  at the *first* one found in the frontier (work often far below the full
  edge count on low-diameter graphs — the "sub-linear in |E|" behaviour the
  paper credits DOBFS with).

The switch follows GAP's heuristic: go bottom-up when the frontier's
out-degree exceeds ``remaining_edges / alpha``; return to top-down when the
frontier shrinks below ``n / beta`` (defaults alpha=15, beta=18).

The implementation is vectorized; since NumPy cannot early-exit inside a
gather, the bottom-up step computes the *first-hit position* per vertex
with a segmented min and reports two work numbers: ``edges_processed``
(early-exit semantics, the number a real CPU/GPU implementation touches —
used by all work-efficiency comparisons) and the actual gathered volume
(wall-clock cost in this substrate).
"""

from __future__ import annotations

import numpy as np

from repro.constants import NO_VERTEX, VERTEX_DTYPE
from repro.engine.result import CCResult
from repro.graph.csr import CSRGraph
from repro.nputil import segment_ranges

#: GAP's direction-switch parameters.
DEFAULT_ALPHA = 15.0
DEFAULT_BETA = 18.0

#: Back-compat alias — DOBFS-CC runs return the unified engine record.
DOBFSResult = CCResult


def _top_down_step(
    graph: CSRGraph,
    labels: np.ndarray,
    frontier: np.ndarray,
    label: int,
) -> tuple[np.ndarray, int]:
    """Expand the frontier; returns (new frontier, edges examined)."""
    indptr, indices = graph.indptr, graph.indices
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=VERTEX_DTYPE), 0
    offsets = np.repeat(starts, counts) + segment_ranges(counts)
    nbrs = indices[offsets]
    fresh = np.unique(nbrs[labels[nbrs] == int(NO_VERTEX)])
    labels[fresh] = label
    return fresh.astype(VERTEX_DTYPE), total


def _bottom_up_step(
    graph: CSRGraph,
    labels: np.ndarray,
    in_frontier: np.ndarray,
    label: int,
) -> tuple[np.ndarray, int, int]:
    """Bottom-up sweep over unvisited vertices.

    Returns (new frontier, modeled early-exit edges, gathered edges).
    """
    indptr, indices = graph.indptr, graph.indices
    unvisited = np.nonzero(labels == int(NO_VERTEX))[0].astype(VERTEX_DTYPE)
    if unvisited.size == 0:
        return np.empty(0, dtype=VERTEX_DTYPE), 0, 0
    starts = indptr[unvisited]
    counts = (indptr[unvisited + 1] - starts).astype(VERTEX_DTYPE)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=VERTEX_DTYPE), 0, 0
    offsets = np.repeat(starts, counts) + segment_ranges(counts)
    hit = in_frontier[indices[offsets]]

    # Segmented first-hit position (within each vertex's neighbour list):
    # positions where no hit get the segment length (i.e. "scanned all").
    within = segment_ranges(counts)
    pos_or_len = np.where(hit, within, np.repeat(counts, counts))
    nonempty = counts > 0
    seg_starts = np.zeros(unvisited.shape[0], dtype=np.int64)
    np.cumsum(counts[:-1], out=seg_starts[1:])
    first_hit = np.minimum.reduceat(pos_or_len, seg_starts[nonempty])

    found_nonempty = first_hit < counts[nonempty]
    found_verts = unvisited[nonempty][found_nonempty]
    labels[found_verts] = label

    # Early-exit model: scanned first_hit + 1 slots on a hit, the whole
    # list otherwise.
    modeled = int(
        np.where(found_nonempty, first_hit + 1, counts[nonempty]).sum()
    )
    return found_verts.astype(VERTEX_DTYPE), modeled, total


def dobfs_cc(
    graph: CSRGraph,
    *,
    alpha: float = DEFAULT_ALPHA,
    beta: float = DEFAULT_BETA,
) -> CCResult:
    """Connected components via direction-optimizing BFS."""
    n = graph.num_vertices
    labels = np.full(n, int(NO_VERTEX), dtype=VERTEX_DTYPE)
    deg = np.asarray(graph.degree())
    total_directed = graph.num_directed_edges

    edges_modeled = 0
    edges_gathered = 0
    td_steps = 0
    bu_steps = 0
    components = 0
    step_edges: list[int] = []

    # GAP's heuristic state: edges_to_check counts unexplored out-degree
    # and only ever decreases; scout is the current frontier's out-degree.
    edges_to_check = total_directed
    cursor = 0
    while cursor < n:
        if labels[cursor] != int(NO_VERTEX):
            cursor += 1
            continue
        components += 1
        label = cursor
        labels[cursor] = label
        frontier = np.asarray([cursor], dtype=VERTEX_DTYPE)
        while frontier.size:
            scout = int(deg[frontier].sum())
            if scout > edges_to_check / alpha:
                # Bottom-up regime: sweep until the frontier both shrinks
                # and drops below n / beta (GAP's do-while hysteresis).
                awake = frontier.shape[0]
                while True:
                    in_frontier = np.zeros(n, dtype=bool)
                    in_frontier[frontier] = True
                    frontier, modeled, gathered = _bottom_up_step(
                        graph, labels, in_frontier, label
                    )
                    edges_modeled += modeled
                    edges_gathered += gathered
                    step_edges.append(modeled)
                    bu_steps += 1
                    prev_awake, awake = awake, frontier.shape[0]
                    if awake == 0 or (
                        awake < prev_awake and awake <= n / beta
                    ):
                        break
                edges_to_check = max(
                    edges_to_check - int(deg[frontier].sum()), 0
                )
            else:
                edges_to_check = max(edges_to_check - scout, 0)
                frontier, examined = _top_down_step(
                    graph, labels, frontier, label
                )
                edges_modeled += examined
                edges_gathered += examined
                step_edges.append(examined)
                td_steps += 1
        cursor += 1
    # step_edges: modeled edges examined per step, in execution order
    # (Fig. 8b input).  edges_processed is the early-exit model (what real
    # hardware touches); edges_gathered the vectorized gather volume.
    return CCResult(
        labels=labels,
        edges_processed=edges_modeled,
        edges_gathered=edges_gathered,
        top_down_steps=td_steps,
        bottom_up_steps=bu_steps,
        bfs_steps=td_steps + bu_steps,
        step_edges=step_edges,
    )
