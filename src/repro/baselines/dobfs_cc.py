"""Direction-optimizing BFS connected components (Beamer et al. [1, 7]) —
deprecated shim.

Like :mod:`~repro.baselines.bfs_cc` but each BFS step chooses between

- **top-down**: expand the frontier's neighbour lists (work proportional to
  frontier out-degree), and
- **bottom-up**: every unvisited vertex scans its own neighbours and stops
  at the *first* one found in the frontier (work often far below the full
  edge count on low-diameter graphs — the "sub-linear in |E|" behaviour the
  paper credits DOBFS with).

The switch follows GAP's heuristic: go bottom-up when the frontier's
out-degree exceeds ``remaining_edges / alpha``; return to top-down when the
frontier shrinks below ``n / beta`` (defaults alpha=15, beta=18).

The algorithm is implemented exactly once, as a backend-agnostic pipeline
(:func:`repro.engine.pipelines.dobfs_pipeline`); the entry point here is a
thin deprecated shim over :func:`repro.engine.run` kept for backward
compatibility — prefer ``engine.run("dobfs", graph)`` in new code.
"""

from __future__ import annotations

from repro.engine import run as _engine_run
from repro.engine.pipelines import DEFAULT_ALPHA, DEFAULT_BETA
from repro.engine.result import CCResult
from repro.graph.csr import CSRGraph

__all__ = ["DEFAULT_ALPHA", "DEFAULT_BETA", "DOBFSResult", "dobfs_cc"]

#: Back-compat alias — DOBFS-CC runs return the unified engine record.
DOBFSResult = CCResult


def dobfs_cc(
    graph: CSRGraph,
    *,
    alpha: float = DEFAULT_ALPHA,
    beta: float = DEFAULT_BETA,
) -> CCResult:
    """Connected components via direction-optimizing BFS (vectorized).

    .. deprecated:: 1.2
        Equivalent to ``engine.run("dobfs", graph, alpha=..., beta=...)``;
        prefer the engine call in new code — it exposes backend selection
        and telemetry.
    """
    return _engine_run("dobfs", graph, alpha=alpha, beta=beta)
