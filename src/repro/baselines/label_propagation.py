"""Min-label propagation CC (paper Sec. II-B) — deprecated shims.

Every vertex starts with a unique label; iterations propagate the minimum
label across edges until a fixpoint.  Work is ``O(D · |E|)`` in the
synchronous variant — the diameter dependence the paper contrasts against.
The *data-driven* variant keeps a frontier of vertices whose label changed
and only processes their edges, trading work for frontier maintenance
(Sec. II-B's discussion of [6]).

Both algorithms are implemented exactly once, as backend-agnostic
pipelines (:func:`repro.engine.pipelines.lp_pipeline` /
:func:`repro.engine.pipelines.lp_datadriven_pipeline`); the entry points
here are thin deprecated shims over :func:`repro.engine.run` kept for
backward compatibility — prefer ``engine.run("lp", graph)`` /
``engine.run("lp-datadriven", graph)`` in new code.
"""

from __future__ import annotations

from repro.engine import run as _engine_run
from repro.engine.result import CCResult
from repro.graph.csr import CSRGraph

#: Back-compat alias — LP runs return the unified engine record.
LPResult = CCResult


def label_propagation(graph: CSRGraph) -> CCResult:
    """Synchronous min-label propagation (vectorized).

    .. deprecated:: 1.2
        Equivalent to ``engine.run("lp", graph)``; prefer the engine call
        in new code — it exposes backend selection and telemetry.
    """
    return _engine_run("lp", graph)


def label_propagation_datadriven(graph: CSRGraph) -> CCResult:
    """Data-driven (frontier) min-label propagation (vectorized).

    .. deprecated:: 1.2
        Equivalent to ``engine.run("lp-datadriven", graph)``; prefer the
        engine call in new code.
    """
    return _engine_run("lp-datadriven", graph)
