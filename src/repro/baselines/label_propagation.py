"""Min-label propagation CC (paper Sec. II-B).

Every vertex starts with a unique label; iterations propagate the minimum
label across edges until a fixpoint.  Work is ``O(D · |E|)`` in the
synchronous variant — the diameter dependence the paper contrasts against.
The *data-driven* variant keeps a frontier of vertices whose label changed
and only processes their edges, trading work for frontier maintenance
(Sec. II-B's discussion of [6]).
"""

from __future__ import annotations

import numpy as np

from repro.constants import ITERATION_CAP_FACTOR, ITERATION_CAP_SLACK, VERTEX_DTYPE
from repro.engine.result import CCResult
from repro.errors import ConvergenceError
from repro.graph.csr import CSRGraph
from repro.nputil import segment_ranges

#: Back-compat alias — LP runs return the unified engine record.
LPResult = CCResult


def _lp_result(labels: np.ndarray, iterations: int, edges: int) -> CCResult:
    return CCResult(labels=labels, iterations=iterations, edges_processed=edges)


def label_propagation(graph: CSRGraph) -> CCResult:
    """Synchronous min-label propagation.

    Each iteration scatter-mins every edge's source label into its
    destination; convergence when no label changes.  Iteration count is
    within a factor of the graph diameter.
    """
    n = graph.num_vertices
    labels = np.arange(n, dtype=VERTEX_DTYPE)
    if n == 0 or graph.num_directed_edges == 0:
        return _lp_result(labels, 0, 0)
    src, dst = graph.edge_array()
    cap = ITERATION_CAP_FACTOR * n + ITERATION_CAP_SLACK
    iterations = 0
    edges = 0
    while True:
        iterations += 1
        if iterations > cap:
            raise ConvergenceError(f"label propagation exceeded {cap} iterations")
        before = labels.copy()
        np.minimum.at(labels, dst, labels[src])
        edges += int(src.shape[0])
        if np.array_equal(labels, before):
            break
    return _lp_result(labels, iterations, edges)


def label_propagation_datadriven(graph: CSRGraph) -> CCResult:
    """Data-driven (frontier) min-label propagation.

    Only edges leaving vertices whose label changed last iteration are
    re-examined, so total work shrinks from ``O(D·|E|)`` toward the sum of
    per-iteration active-edge counts — at the cost of maintaining the
    frontier (paper: "at the cost of maintaining a frontier of active
    vertices").
    """
    n = graph.num_vertices
    labels = np.arange(n, dtype=VERTEX_DTYPE)
    if n == 0 or graph.num_directed_edges == 0:
        return _lp_result(labels, 0, 0)
    indptr, indices = graph.indptr, graph.indices
    frontier = np.arange(n, dtype=VERTEX_DTYPE)
    cap = ITERATION_CAP_FACTOR * n + ITERATION_CAP_SLACK
    iterations = 0
    edges = 0
    while frontier.size:
        iterations += 1
        if iterations > cap:
            raise ConvergenceError(
                f"data-driven label propagation exceeded {cap} iterations"
            )
        counts = indptr[frontier + 1] - indptr[frontier]
        total = int(counts.sum())
        if total == 0:
            break
        src = np.repeat(frontier, counts)
        offsets = np.repeat(indptr[frontier], counts) + segment_ranges(counts)
        dst = indices[offsets]
        edges += total
        before = labels.copy()
        np.minimum.at(labels, dst, labels[src])
        changed = np.nonzero(labels != before)[0].astype(VERTEX_DTYPE)
        frontier = changed
    return _lp_result(labels, iterations, edges)
