"""Baseline CC algorithms the paper compares against.

- :mod:`~repro.baselines.shiloach_vishkin` — the original tree-hooking
  algorithm (GAP's SV formulation), CSR and edge-list variants plus a
  simulated-machine version;
- :mod:`~repro.baselines.label_propagation` — synchronous min-label
  propagation and its data-driven (frontier) variant;
- :mod:`~repro.baselines.bfs_cc` — per-component parallel BFS;
- :mod:`~repro.baselines.dobfs_cc` — direction-optimizing BFS-CC.
"""

from repro.baselines.bfs_cc import BFSCCResult, bfs_cc
from repro.baselines.dobfs_cc import DOBFSResult, dobfs_cc
from repro.baselines.label_propagation import (
    LPResult,
    label_propagation,
    label_propagation_datadriven,
)
from repro.baselines.shiloach_vishkin import (
    SVResult,
    shiloach_vishkin,
    shiloach_vishkin_edgelist,
    sv_simulated,
)

__all__ = [
    "BFSCCResult",
    "bfs_cc",
    "DOBFSResult",
    "dobfs_cc",
    "LPResult",
    "label_propagation",
    "label_propagation_datadriven",
    "SVResult",
    "shiloach_vishkin",
    "shiloach_vishkin_edgelist",
    "sv_simulated",
]
