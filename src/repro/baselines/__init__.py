"""Baseline CC algorithms the paper compares against.

Every baseline is implemented once, as a backend-agnostic pipeline in
:mod:`repro.engine.pipelines`; the entry points in this package are thin
deprecated shims over :func:`repro.engine.run` kept for backward
compatibility.

- :mod:`~repro.baselines.shiloach_vishkin` — the original tree-hooking
  algorithm (GAP's SV formulation), CSR and edge-list variants;
- :mod:`~repro.baselines.label_propagation` — synchronous min-label
  propagation and its data-driven (frontier) variant;
- :mod:`~repro.baselines.bfs_cc` — per-component parallel BFS;
- :mod:`~repro.baselines.dobfs_cc` — direction-optimizing BFS-CC.
"""

from repro.baselines.bfs_cc import BFSCCResult, bfs_cc
from repro.baselines.dobfs_cc import DOBFSResult, dobfs_cc
from repro.baselines.label_propagation import (
    LPResult,
    label_propagation,
    label_propagation_datadriven,
)
from repro.baselines.shiloach_vishkin import (
    SVResult,
    shiloach_vishkin,
    shiloach_vishkin_edgelist,
)

__all__ = [
    "BFSCCResult",
    "bfs_cc",
    "DOBFSResult",
    "dobfs_cc",
    "LPResult",
    "label_propagation",
    "label_propagation_datadriven",
    "SVResult",
    "shiloach_vishkin",
    "shiloach_vishkin_edgelist",
]
