"""The simulated parallel machine.

:class:`SimulatedMachine` executes *kernel generators* over partitioned item
ranges.  A kernel is a generator function

``kernel(ctx: KernelContext, item: int, *args) -> Generator``

whose shared-memory accesses go through ``ctx`` helpers (``yield from
ctx.read(...)`` etc.).  Each helper yields once before touching memory, so
the machine can interleave workers at shared-operation granularity — the
faithful analogue of PRAM-style concurrent execution, and the level at
which the paper's CAS reasoning (Lemmas 4–5) operates.

Interleaving policies:

- ``roundrobin`` — workers advance one shared op each in fixed rotation
  (deterministic; the default);
- ``random`` — a seeded RNG picks which worker steps next (used by the
  property tests to hunt for interleaving-dependent invariant violations);
- ``sequential`` — each worker runs to completion before the next starts
  (degenerate schedule; useful as a differential-testing extreme).

The machine also serves as the instrumentation hub: per-phase per-worker
step counts (work/span), read/write/CAS counters, and an optional
:class:`~repro.parallel.memtrace.MemoryTrace`.
"""

from __future__ import annotations

from typing import Callable, Generator, Iterable, Sequence

import numpy as np

from repro.constants import COUNTER_DTYPE
from repro.errors import ConfigurationError
from repro.parallel import memtrace as mt
from repro.parallel.memtrace import MemoryTrace
from repro.parallel.metrics import PhaseStats, RunStats
from repro.parallel.scheduler import partition_indices

__all__ = ["KernelContext", "SimulatedMachine"]


class KernelContext:
    """Per-worker handle through which kernels touch shared memory.

    All helpers are generators; kernels invoke them with ``yield from`` so
    the machine gains a preemption point before every shared access.
    """

    __slots__ = ("worker_id", "_machine")

    def __init__(self, worker_id: int, machine: "SimulatedMachine") -> None:
        self.worker_id = worker_id
        self._machine = machine

    def read(self, array: np.ndarray, idx: int) -> Generator[None, None, int]:
        """Shared read of ``array[idx]``."""
        yield
        self._machine._account(self.worker_id, idx, mt.OP_READ)
        return int(array[idx])

    def write(
        self, array: np.ndarray, idx: int, value: int
    ) -> Generator[None, None, None]:
        """Shared (unconditional) write of ``array[idx]``."""
        yield
        self._machine._account(self.worker_id, idx, mt.OP_WRITE)
        array[idx] = value

    def cas(
        self, array: np.ndarray, idx: int, expected: int, new: int
    ) -> Generator[None, None, bool]:
        """Atomic compare-and-swap on ``array[idx]``.

        The compare and the conditional write happen inside a single resume
        of the generator — i.e. atomically with respect to all other
        workers, exactly like a hardware CAS.
        """
        yield
        if int(array[idx]) == expected:
            array[idx] = new
            self._machine._account(self.worker_id, idx, mt.OP_CAS_SUCCESS)
            return True
        self._machine._account(self.worker_id, idx, mt.OP_CAS_FAIL)
        return False


class SimulatedMachine:
    """A ``p``-worker shared-memory machine with deterministic scheduling.

    Parameters
    ----------
    num_workers:
        Worker count ``p``.
    schedule:
        Item partitioning across workers (see
        :func:`~repro.parallel.scheduler.partition_indices`).
    chunk_size:
        Default chunk granularity for the ``chunk`` schedule (overridable
        per ``parallel_for`` call).
    interleave:
        ``roundrobin`` | ``random`` | ``sequential`` step ordering.
    seed:
        RNG seed for the ``random`` interleave policy.
    trace:
        Optional :class:`MemoryTrace` capturing every shared access.
    """

    def __init__(
        self,
        num_workers: int = 4,
        *,
        schedule: str = "block",
        chunk_size: int | None = None,
        interleave: str = "roundrobin",
        seed: int = 0,
        trace: MemoryTrace | None = None,
    ) -> None:
        if num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {num_workers}"
            )
        if interleave not in ("roundrobin", "random", "sequential"):
            raise ConfigurationError(
                f"unknown interleave policy {interleave!r}"
            )
        self.num_workers = num_workers
        self.schedule = schedule
        self.chunk_size = chunk_size
        self.interleave = interleave
        self._rng = np.random.default_rng(seed)
        self.trace = trace
        self.stats = RunStats(num_workers=num_workers, phases=[])
        self._phase: PhaseStats | None = None

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def _account(self, worker: int, address: int, op: int) -> None:
        ph = self._phase
        if ph is not None:
            ph.worker_steps[worker] += 1
            if op == mt.OP_READ:
                ph.reads += 1
            elif op == mt.OP_WRITE:
                ph.writes += 1
            elif op == mt.OP_CAS_SUCCESS:
                ph.cas_attempts += 1
            else:
                ph.cas_attempts += 1
                ph.cas_failures += 1
        if self.trace is not None:
            self.trace.record(address, worker, op)

    def reset_stats(self) -> None:
        """Discard accumulated phase statistics (the trace is unaffected)."""
        self.stats = RunStats(num_workers=self.num_workers, phases=[])

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def parallel_for(
        self,
        items: int | np.ndarray | Sequence[int],
        kernel: Callable[..., Generator],
        *args,
        phase: str = "parallel_for",
        chunk_size: int | None = None,
    ) -> PhaseStats:
        """Run ``kernel(ctx, item, *args)`` over all items in parallel.

        ``items`` is an item count or an explicit item array; partitioning
        follows the machine's schedule.  Returns the phase statistics.
        """
        if not isinstance(items, (int, np.integer, np.ndarray)):
            items = np.asarray(items)
        if chunk_size is None:
            chunk_size = self.chunk_size
        if isinstance(items, (int, np.integer)):
            items_arr = np.arange(int(items), dtype=np.int64)
        else:
            items_arr = np.ascontiguousarray(items, dtype=np.int64)

        ph = PhaseStats(
            label=phase,
            worker_steps=np.zeros(self.num_workers, dtype=COUNTER_DTYPE),
        )
        self.stats.phases.append(ph)
        if self.trace is not None:
            self.trace.begin_phase(phase)
        self._phase = ph
        try:
            if self.schedule == "dynamic":
                self._drive_dynamic(items_arr, kernel, args, chunk_size)
            else:
                kwargs = {} if chunk_size is None else {"chunk_size": chunk_size}
                parts = partition_indices(
                    items_arr, self.num_workers,
                    schedule=self.schedule, **kwargs,
                )
                self._drive(parts, kernel, args)
        finally:
            self._phase = None
        return ph

    def _drive_dynamic(
        self,
        items: np.ndarray,
        kernel: Callable[..., Generator],
        args: tuple,
        chunk_size: int | None,
    ) -> None:
        """Shared-queue scheduling: an idle worker pulls the next chunk.

        The faithful analogue of ``omp schedule(dynamic, chunk)``: no
        worker owns items in advance, so stragglers (e.g. hub vertices)
        cannot strand work on one worker.  Runs under the same
        interleaving policies as the static schedules.
        """
        chunk = chunk_size if chunk_size else max(items.shape[0] // (8 * self.num_workers), 1)
        cursor = 0

        def pull() -> list[int]:
            nonlocal cursor
            lo = cursor
            cursor = min(cursor + chunk, items.shape[0])
            return items[lo:cursor].tolist()

        p = self.num_workers
        contexts = [KernelContext(w, self) for w in range(p)]
        queues: list[list[int]] = [[] for _ in range(p)]
        active: list[Generator | None] = [None] * p

        def start_next(w: int) -> bool:
            while True:
                if not queues[w]:
                    queues[w] = pull()
                    if not queues[w]:
                        active[w] = None
                        return False
                item = queues[w].pop(0)
                gen = kernel(contexts[w], item, *args)
                try:
                    next(gen)
                except StopIteration:
                    continue
                active[w] = gen
                return True

        def step(w: int) -> None:
            gen = active[w]
            try:
                next(gen)
            except StopIteration:
                alive[w] = start_next(w)

        alive = [start_next(w) for w in range(p)]
        if self.interleave == "sequential":
            for w in range(p):
                while alive[w]:
                    step(w)
            return
        if self.interleave == "random":
            while True:
                candidates = [w for w in range(p) if alive[w]]
                if not candidates:
                    break
                step(int(self._rng.choice(candidates)))
            return
        while any(alive):
            for w in range(p):
                if alive[w]:
                    step(w)

    def _drive(
        self,
        parts: list[np.ndarray],
        kernel: Callable[..., Generator],
        args: tuple,
    ) -> None:
        p = self.num_workers
        contexts = [KernelContext(w, self) for w in range(p)]
        item_iters: list[Iterable[int]] = [iter(part.tolist()) for part in parts]
        active: list[Generator | None] = [None] * p

        def start_next(w: int) -> bool:
            """Pull the worker's next item and run its kernel to the first
            preemption point; False when the worker is out of items."""
            for item in item_iters[w]:
                gen = kernel(contexts[w], item, *args)
                try:
                    next(gen)  # run to first yield (no shared access yet)
                except StopIteration:
                    continue  # kernel performed no shared ops
                active[w] = gen
                return True
            active[w] = None
            return False

        def step(w: int) -> None:
            """Advance worker ``w`` by one shared operation."""
            gen = active[w]
            try:
                next(gen)
            except StopIteration:
                alive[w] = start_next(w)

        alive = [start_next(w) for w in range(p)]

        if self.interleave == "sequential":
            for w in range(p):
                while alive[w]:
                    step(w)
            return

        if self.interleave == "random":
            while True:
                candidates = [w for w in range(p) if alive[w]]
                if not candidates:
                    break
                step(int(self._rng.choice(candidates)))
            return

        # roundrobin
        while any(alive):
            for w in range(p):
                if alive[w]:
                    step(w)
