"""Atomic operations over NumPy arrays, with contention accounting.

The simulated machine interleaves workers between shared-memory operations,
so a plain read-modify-write is genuinely racy in the simulation; kernels
must use :class:`AtomicView` for conditional writes exactly where the
paper's C++ uses ``compare_exchange``.  Every CAS attempt and failure is
counted — the failure counts are the library's contention metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class AtomicStats:
    """Operation counters for one atomic view."""

    reads: int = 0
    writes: int = 0
    cas_attempts: int = 0
    cas_failures: int = 0

    def merge(self, other: "AtomicStats") -> None:
        self.reads += other.reads
        self.writes += other.writes
        self.cas_attempts += other.cas_attempts
        self.cas_failures += other.cas_failures


@dataclass
class AtomicView:
    """Atomic access wrapper over a 1-D NumPy array.

    In the simulated machine there is only one OS thread, so operations are
    trivially atomic; the class exists to (a) force kernels to declare which
    accesses are atomic, mirroring the paper's implementation, and (b) count
    contention: a CAS *fails* when the observed value no longer matches the
    expected one, exactly as on hardware.
    """

    array: np.ndarray
    stats: AtomicStats = field(default_factory=AtomicStats)

    def load(self, idx: int) -> int:
        """Atomic read."""
        self.stats.reads += 1
        return int(self.array[idx])

    def store(self, idx: int, value: int) -> None:
        """Atomic write."""
        self.stats.writes += 1
        self.array[idx] = value

    def compare_and_swap(self, idx: int, expected: int, new: int) -> bool:
        """Write ``new`` iff the current value equals ``expected``.

        Returns True on success.  Failure increments the contention counter.
        """
        self.stats.cas_attempts += 1
        if int(self.array[idx]) == expected:
            self.array[idx] = new
            return True
        self.stats.cas_failures += 1
        return False

    def min_write(self, idx: int, value: int) -> bool:
        """Atomic ``array[idx] = min(array[idx], value)`` via CAS loop.

        Returns True if the stored value decreased.  This is the atomic-min
        primitive used by data-driven label propagation.
        """
        while True:
            cur = self.load(idx)
            if value >= cur:
                return False
            if self.compare_and_swap(idx, cur, value):
                return True
