"""Simulated parallel machine: deterministic interleaving, atomics, tracing.

The paper evaluates on 20-core CPUs and a GPU; this substrate replaces the
hardware with an explicit execution model so that every claim the paper
derives from hardware behaviour (memory locality, CAS contention, strong
scaling) is measured from first principles:

- :class:`~repro.parallel.machine.SimulatedMachine` runs *kernel generators*
  over partitioned index ranges, interleaving workers at shared-memory-
  operation granularity (deterministic round-robin or seeded random);
- :class:`~repro.parallel.atomics.AtomicView` provides compare-and-swap with
  contention counting;
- :class:`~repro.parallel.memtrace.MemoryTrace` records every π access for
  the Fig. 7 heatmaps;
- :class:`~repro.parallel.metrics.WorkSpanModel` converts per-worker step
  counts into modeled execution times ``T_p = max_w steps_w × τ`` per phase.
"""

from repro.parallel.atomics import AtomicView
from repro.parallel.machine import KernelContext, SimulatedMachine
from repro.parallel.memtrace import MemoryTrace
from repro.parallel.metrics import PhaseStats, RunStats, WorkSpanModel
from repro.parallel.scheduler import partition_indices

__all__ = [
    "AtomicView",
    "KernelContext",
    "SimulatedMachine",
    "MemoryTrace",
    "PhaseStats",
    "RunStats",
    "WorkSpanModel",
    "partition_indices",
]
