"""Memory access tracing for the Fig. 7 analysis.

Hardware papers collect π-array access traces with binary instrumentation;
here the instrumented kernels report every shared read/write/CAS to a
:class:`MemoryTrace`, which stores the stream as growable column arrays:
``(address, worker, phase, op)``.

Phases are registered by label in execution order, so the Fig. 7 bottom
panels (per-thread scatter with I/L/C/F/H phase bands) fall directly out of
the trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: op codes in the trace stream.
OP_READ = 0
OP_WRITE = 1
OP_CAS_SUCCESS = 2
OP_CAS_FAIL = 3

OP_NAMES = {
    OP_READ: "read",
    OP_WRITE: "write",
    OP_CAS_SUCCESS: "cas",
    OP_CAS_FAIL: "cas-fail",
}

_CHUNK = 1 << 16


@dataclass(frozen=True)
class TraceArrays:
    """The completed trace as parallel column arrays."""

    address: np.ndarray
    worker: np.ndarray
    phase: np.ndarray
    op: np.ndarray
    phase_labels: tuple[str, ...]

    @property
    def num_events(self) -> int:
        return int(self.address.shape[0])


class MemoryTrace:
    """Growable columnar log of shared-memory accesses."""

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self._buf = np.empty((_CHUNK, 4), dtype=np.int64)
        self._fill = 0
        self._phases: list[str] = []

    # ------------------------------------------------------------------ #

    def begin_phase(self, label: str) -> int:
        """Register a new phase; returns its index."""
        self._phases.append(label)
        return len(self._phases) - 1

    @property
    def current_phase(self) -> int:
        """Index of the most recently begun phase (−1 before any)."""
        return len(self._phases) - 1

    def record(self, address: int, worker: int, op: int) -> None:
        """Append one access event (attributed to the current phase)."""
        if self._fill == _CHUNK:
            self._chunks.append(self._buf)
            self._buf = np.empty((_CHUNK, 4), dtype=np.int64)
            self._fill = 0
        row = self._buf[self._fill]
        row[0] = address
        row[1] = worker
        row[2] = len(self._phases) - 1
        row[3] = op
        self._fill += 1

    # ------------------------------------------------------------------ #

    def finalize(self) -> TraceArrays:
        """Freeze the trace into column arrays."""
        parts = self._chunks + [self._buf[: self._fill]]
        data = np.concatenate(parts, axis=0) if parts else np.empty((0, 4))
        return TraceArrays(
            address=data[:, 0].copy(),
            worker=data[:, 1].copy(),
            phase=data[:, 2].copy(),
            op=data[:, 3].copy(),
            phase_labels=tuple(self._phases),
        )

    def __len__(self) -> int:
        return len(self._chunks) * _CHUNK + self._fill
