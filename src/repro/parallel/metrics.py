"""Work/span accounting and the modeled-time cost model.

The simulated machine counts *shared-memory operations* per worker per
phase.  These kernels are memory-bound (the paper's Sec. V-C analysis is
entirely about π-array access patterns), so shared ops are the natural unit
of modeled time:

``T_p = Σ_phases ( max_w steps(phase, w) · τ  +  β )``

with ``τ`` the per-access cost and ``β`` a per-phase barrier/fork-join
overhead.  Strong-scaling curves (Fig. 8b) follow by running the same
algorithm on machines with different worker counts and comparing ``T_p``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class PhaseStats:
    """Counters for one parallel phase."""

    label: str
    worker_steps: np.ndarray  # shape (p,) shared ops per worker
    reads: int = 0
    writes: int = 0
    cas_attempts: int = 0
    cas_failures: int = 0

    @property
    def work(self) -> int:
        """Total shared ops across workers."""
        return int(self.worker_steps.sum())

    @property
    def span(self) -> int:
        """Critical-path shared ops (busiest worker)."""
        return int(self.worker_steps.max()) if self.worker_steps.size else 0

    @property
    def imbalance(self) -> float:
        """span / (work / p): 1.0 is perfectly balanced."""
        p = self.worker_steps.shape[0]
        if self.work == 0:
            return 1.0
        return self.span / (self.work / p)


@dataclass
class RunStats:
    """Counters for a full algorithm execution on the simulated machine."""

    num_workers: int
    phases: list[PhaseStats] = field(default_factory=list)

    @property
    def total_work(self) -> int:
        return sum(ph.work for ph in self.phases)

    @property
    def total_span(self) -> int:
        return sum(ph.span for ph in self.phases)

    @property
    def total_cas_failures(self) -> int:
        return sum(ph.cas_failures for ph in self.phases)

    @property
    def total_reads(self) -> int:
        return sum(ph.reads for ph in self.phases)

    @property
    def total_writes(self) -> int:
        return sum(ph.writes for ph in self.phases)

    def phase(self, label: str) -> PhaseStats:
        """First phase with the given label (KeyError if absent)."""
        for ph in self.phases:
            if ph.label == label:
                return ph
        raise KeyError(f"no phase labeled {label!r}")

    def merged_by_label(self) -> dict[str, PhaseStats]:
        """Aggregate repeated phases (e.g. multiple link rounds) by label."""
        out: dict[str, PhaseStats] = {}
        for ph in self.phases:
            if ph.label not in out:
                out[ph.label] = PhaseStats(
                    ph.label, ph.worker_steps.copy(), ph.reads, ph.writes,
                    ph.cas_attempts, ph.cas_failures,
                )
            else:
                acc = out[ph.label]
                acc.worker_steps = acc.worker_steps + ph.worker_steps
                acc.reads += ph.reads
                acc.writes += ph.writes
                acc.cas_attempts += ph.cas_attempts
                acc.cas_failures += ph.cas_failures
        return out


@dataclass(frozen=True)
class WorkSpanModel:
    """Converts :class:`RunStats` into modeled execution time.

    Parameters
    ----------
    tau:
        Cost of one shared-memory operation (arbitrary time unit).
    beta:
        Fork-join/barrier overhead charged once per phase; makes scaling
        curves saturate realistically instead of scaling forever.
    """

    tau: float = 1.0
    beta: float = 0.0

    def phase_time(self, phase: PhaseStats) -> float:
        return phase.span * self.tau + self.beta

    def time(self, stats: RunStats) -> float:
        """Modeled wall time of the run."""
        return float(sum(self.phase_time(ph) for ph in stats.phases))

    def speedup(self, serial: RunStats, parallel: RunStats) -> float:
        """Modeled speedup of ``parallel`` over ``serial``."""
        t1 = self.time(serial)
        tp = self.time(parallel)
        return t1 / tp if tp > 0 else float("inf")

    def projected_time(
        self, phase_works: "list[int] | np.ndarray", num_workers: int
    ) -> float:
        """Modeled time of a run described only by per-phase work totals.

        For traversal algorithms (BFS/DOBFS/LP) whose per-phase work is a
        flat edge count with no per-worker breakdown, assume perfect
        balance within a phase: ``T_p = Σ (work_i / p · τ + β)``, with
        phase time floored at one operation.  This is the projection used
        to place the traversal baselines on the Fig. 8b scaling plot.
        """
        if num_workers < 1:
            raise ConfigurationError("num_workers must be >= 1")
        total = 0.0
        for w in phase_works:
            total += max(float(w) / num_workers, 1.0) * self.tau + self.beta
        return total
