"""Work partitioning for the simulated machine.

Mirrors OpenMP loop schedules: ``block`` (static contiguous ranges, the GAP
default and what the paper's CSR kernels use), ``cyclic`` (stride-p
round-robin), and ``chunk`` (static chunks dealt round-robin, approximating
``schedule(dynamic, chunk)`` without a runtime queue — the simulator is
deterministic, so a deterministic deal is the faithful analogue).
"""

from __future__ import annotations

import numpy as np

from repro.constants import DEFAULT_CHUNK_SIZE, VERTEX_DTYPE
from repro.errors import ConfigurationError

__all__ = ["partition_indices"]


def partition_indices(
    items: int | np.ndarray,
    num_workers: int,
    *,
    schedule: str = "block",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> list[np.ndarray]:
    """Split an index range (or explicit item array) across workers.

    Parameters
    ----------
    items:
        Either an item count ``n`` (items are ``0..n-1``) or an explicit
        array of item ids.
    num_workers:
        Number of workers ``p``; the result has exactly ``p`` entries (some
        possibly empty).
    schedule:
        ``block`` | ``cyclic`` | ``chunk``.
    chunk_size:
        Chunk granularity for the ``chunk`` schedule.
    """
    if num_workers < 1:
        raise ConfigurationError(f"num_workers must be >= 1, got {num_workers}")
    if isinstance(items, (int, np.integer)):
        if items < 0:
            raise ConfigurationError(f"item count must be >= 0, got {items}")
        ids = np.arange(int(items), dtype=VERTEX_DTYPE)
    else:
        ids = np.ascontiguousarray(items, dtype=VERTEX_DTYPE)

    p = num_workers
    if schedule == "block":
        return [chunk for chunk in np.array_split(ids, p)]
    if schedule == "cyclic":
        return [ids[w::p] for w in range(p)]
    if schedule == "chunk":
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        nchunks = (ids.shape[0] + chunk_size - 1) // chunk_size
        parts: list[list[np.ndarray]] = [[] for _ in range(p)]
        for c in range(nchunks):
            parts[c % p].append(ids[c * chunk_size : (c + 1) * chunk_size])
        return [
            np.concatenate(part) if part else np.empty(0, dtype=VERTEX_DTYPE)
            for part in parts
        ]
    raise ConfigurationError(
        f"unknown schedule {schedule!r}; expected block/cyclic/chunk"
    )
