"""Graph statistics: degrees, component census, diameter estimates.

These power the Table III reproduction (dataset statistics) and the sanity
layers of the benchmark harness.  Component counts here come from
``scipy.sparse.csgraph`` — an *independent* oracle from both the library's
own algorithms and the sequential union-find, so that cross-checks in the
test suite triangulate three implementations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.constants import NO_VERTEX, VERTEX_DTYPE
from repro.graph.csr import CSRGraph
from repro.nputil import segment_ranges

__all__ = [
    "DegreeStatistics",
    "ComponentCensus",
    "GraphProperties",
    "degree_statistics",
    "component_census",
    "scipy_components",
    "bfs_levels",
    "pseudo_diameter",
    "exact_diameter",
    "summarize",
]


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary of the (stored, directed) degree distribution."""

    min: int
    max: int
    mean: float
    median: float
    std: float
    num_isolated: int


@dataclass(frozen=True)
class ComponentCensus:
    """Connected-component structure of a graph."""

    num_components: int
    sizes: np.ndarray  # descending component sizes
    largest_fraction: float  # |c_max| / |V|

    @property
    def largest(self) -> int:
        return int(self.sizes[0]) if self.sizes.size else 0


@dataclass(frozen=True)
class GraphProperties:
    """The Table III row for one dataset."""

    name: str
    num_vertices: int
    num_edges: int
    degree: DegreeStatistics
    components: ComponentCensus
    pseudo_diameter: int


def degree_statistics(graph: CSRGraph) -> DegreeStatistics:
    """Degree distribution summary of ``graph``."""
    deg = np.asarray(graph.degree())
    if deg.size == 0:
        return DegreeStatistics(0, 0, 0.0, 0.0, 0.0, 0)
    return DegreeStatistics(
        min=int(deg.min()),
        max=int(deg.max()),
        mean=float(deg.mean()),
        median=float(np.median(deg)),
        std=float(deg.std()),
        num_isolated=int(np.count_nonzero(deg == 0)),
    )


def _to_scipy(graph: CSRGraph) -> sp.csr_matrix:
    data = np.ones(graph.num_directed_edges, dtype=np.int8)
    n = graph.num_vertices
    return sp.csr_matrix((data, graph.indices, graph.indptr), shape=(n, n))


def scipy_components(graph: CSRGraph) -> np.ndarray:
    """Component labels from scipy's csgraph (independent oracle)."""
    if graph.num_vertices == 0:
        return np.empty(0, dtype=VERTEX_DTYPE)
    _, labels = csgraph.connected_components(
        _to_scipy(graph), directed=False
    )
    return labels.astype(VERTEX_DTYPE)


def component_census(graph: CSRGraph) -> ComponentCensus:
    """Number and sizes of connected components."""
    n = graph.num_vertices
    if n == 0:
        return ComponentCensus(0, np.empty(0, dtype=VERTEX_DTYPE), 0.0)
    labels = scipy_components(graph)
    sizes = np.bincount(labels)
    sizes = np.sort(sizes)[::-1].astype(VERTEX_DTYPE)
    return ComponentCensus(
        num_components=int(sizes.shape[0]),
        sizes=sizes,
        largest_fraction=float(sizes[0]) / float(n),
    )


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """BFS level of every vertex from ``source`` (−1 when unreachable).

    Vectorised frontier expansion: each step gathers the neighbour slices of
    the whole frontier with ``np.repeat`` arithmetic instead of per-vertex
    Python loops.
    """
    n = graph.num_vertices
    levels = np.full(n, int(NO_VERTEX), dtype=VERTEX_DTYPE)
    if n == 0:
        return levels
    levels[source] = 0
    frontier = np.asarray([source], dtype=VERTEX_DTYPE)
    indptr, indices = graph.indptr, graph.indices
    level = 0
    while frontier.size:
        level += 1
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Flatten all frontier adjacency slices into one gather.
        offsets = np.repeat(starts, counts) + segment_ranges(counts)
        nbrs = indices[offsets]
        fresh = nbrs[levels[nbrs] == int(NO_VERTEX)]
        if fresh.size == 0:
            break
        fresh = np.unique(fresh)
        levels[fresh] = level
        frontier = fresh
    return levels


def pseudo_diameter(graph: CSRGraph, *, sweeps: int = 2, seed: int = 0) -> int:
    """Lower-bound diameter estimate via the double-sweep heuristic.

    Starts from the highest-degree vertex of the largest component, runs a
    BFS, restarts from the farthest vertex found, and repeats ``sweeps``
    times.  Exact on trees; a tight lower bound on most real graphs.
    """
    n = graph.num_vertices
    if n == 0:
        return 0
    deg = np.asarray(graph.degree())
    source = int(np.argmax(deg))
    best = 0
    for _ in range(max(1, sweeps)):
        levels = bfs_levels(graph, source)
        reachable = levels >= 0
        ecc = int(levels[reachable].max()) if reachable.any() else 0
        if ecc <= best and ecc != 0:
            best = max(best, ecc)
            break
        best = max(best, ecc)
        far = np.nonzero(levels == ecc)[0]
        source = int(far[0])
    return best


def exact_diameter(graph: CSRGraph) -> int:
    """Exact diameter of the largest component via all-pairs BFS.

    Quadratic in ``n`` — intended for graphs of at most a few thousand
    vertices (tests and illustrations).
    """
    n = graph.num_vertices
    best = 0
    for v in range(n):
        levels = bfs_levels(graph, v)
        reachable = levels >= 0
        if reachable.any():
            best = max(best, int(levels[reachable].max()))
    return best


def summarize(graph: CSRGraph, name: str = "graph") -> GraphProperties:
    """Compute the full Table III row for ``graph``."""
    return GraphProperties(
        name=name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        degree=degree_statistics(graph),
        components=component_census(graph),
        pseudo_diameter=pseudo_diameter(graph),
    )
