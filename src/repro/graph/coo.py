"""Edge-list (COO) container and transforms.

The paper's GPU baseline (Soman et al.) operates on edge lists rather than
CSR; :class:`EdgeList` is the library's counterpart, also used as the interim
format of every graph builder and generator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.errors import GraphFormatError


@dataclass(frozen=True)
class EdgeList:
    """A bag of directed edges over ``num_vertices`` vertices.

    ``src`` and ``dst`` are parallel ``int64`` arrays.  Duplicates and self
    loops are permitted; use the transform methods to normalise.
    """

    num_vertices: int
    src: np.ndarray
    dst: np.ndarray

    def __post_init__(self) -> None:
        src = np.ascontiguousarray(self.src, dtype=VERTEX_DTYPE)
        dst = np.ascontiguousarray(self.dst, dtype=VERTEX_DTYPE)
        object.__setattr__(self, "src", src)
        object.__setattr__(self, "dst", dst)
        if src.ndim != 1 or dst.ndim != 1 or src.shape != dst.shape:
            raise GraphFormatError("src/dst must be 1-D arrays of equal length")
        if self.num_vertices < 0:
            raise GraphFormatError("num_vertices must be non-negative")
        if src.size:
            lo = min(int(src.min()), int(dst.min()))
            hi = max(int(src.max()), int(dst.max()))
            if lo < 0 or hi >= self.num_vertices:
                raise GraphFormatError(
                    f"edge endpoints must lie in [0, {self.num_vertices}); "
                    f"found range [{lo}, {hi}]"
                )

    # ------------------------------------------------------------------ #

    @property
    def num_edges(self) -> int:
        """Number of stored (directed) edge records."""
        return int(self.src.shape[0])

    def symmetrized(self) -> "EdgeList":
        """Return an edge list containing both orientations of every edge.

        Self loops are kept single — duplicating them would double-count the
        loop in CSR degree.
        """
        loops = self.src == self.dst
        rev_src = self.dst[~loops]
        rev_dst = self.src[~loops]
        return EdgeList(
            self.num_vertices,
            np.concatenate([self.src, rev_src]),
            np.concatenate([self.dst, rev_dst]),
        )

    def deduplicated(self) -> "EdgeList":
        """Drop exact duplicate ``(src, dst)`` records (orientation-aware)."""
        if self.num_edges == 0:
            return self
        key = self.src * np.int64(self.num_vertices or 1) + self.dst
        _, first = np.unique(key, return_index=True)
        first.sort()
        return EdgeList(self.num_vertices, self.src[first], self.dst[first])

    def without_self_loops(self) -> "EdgeList":
        """Drop ``(v, v)`` records."""
        keep = self.src != self.dst
        return EdgeList(self.num_vertices, self.src[keep], self.dst[keep])

    def canonicalized(self) -> "EdgeList":
        """Normalise each record to ``src <= dst`` (undirected canonical
        form), preserving record order."""
        lo = np.minimum(self.src, self.dst)
        hi = np.maximum(self.src, self.dst)
        return EdgeList(self.num_vertices, lo, hi)

    def permuted(self, order: np.ndarray) -> "EdgeList":
        """Reorder edge records by ``order`` (a permutation of record ids).

        Used to build adversarial edge orders for worst-case analyses
        (paper Sec. V-A).
        """
        order = np.asarray(order)
        if order.shape != self.src.shape:
            raise GraphFormatError("permutation length must equal num_edges")
        return EdgeList(self.num_vertices, self.src[order], self.dst[order])

    def concatenated(self, other: "EdgeList") -> "EdgeList":
        """Append ``other``'s records (vertex counts must agree)."""
        if other.num_vertices != self.num_vertices:
            raise GraphFormatError("cannot concatenate edge lists of different orders")
        return EdgeList(
            self.num_vertices,
            np.concatenate([self.src, other.src]),
            np.concatenate([self.dst, other.dst]),
        )

    def relabeled(self, mapping: np.ndarray, num_vertices: int) -> "EdgeList":
        """Apply a vertex relabeling ``v -> mapping[v]``."""
        mapping = np.ascontiguousarray(mapping, dtype=VERTEX_DTYPE)
        if mapping.shape[0] != self.num_vertices:
            raise GraphFormatError("mapping length must equal num_vertices")
        return EdgeList(num_vertices, mapping[self.src], mapping[self.dst])

    def as_pairs(self) -> list[tuple[int, int]]:
        """Edges as Python tuples (slow path, for tests)."""
        return [(int(u), int(v)) for u, v in zip(self.src, self.dst)]
