"""Compressed Sparse Row (CSR) graph representation.

:class:`CSRGraph` is the canonical in-memory graph format of the library,
mirroring the representation used by the GAP benchmark suite and the paper's
CPU implementation.  It stores an adjacency structure as two flat arrays:

- ``indptr``  — length ``n + 1``; neighbours of vertex ``v`` occupy
  ``indices[indptr[v]:indptr[v + 1]]``;
- ``indices`` — length ``m`` (number of *directed* edges; an undirected edge
  appears once in each endpoint's neighbour list).

The structure is immutable after construction: both arrays are flagged
non-writeable so that algorithm kernels can never corrupt a shared graph.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.errors import GraphFormatError


class CSRGraph:
    """An immutable undirected graph in CSR form.

    Parameters
    ----------
    indptr:
        Monotone non-decreasing ``int64`` array of length ``n + 1`` with
        ``indptr[0] == 0`` and ``indptr[-1] == len(indices)``.
    indices:
        ``int64`` array of neighbour ids, each in ``[0, n)``.
    validate:
        When true (default) the CSR invariants above are checked eagerly and
        a :class:`~repro.errors.GraphFormatError` is raised on violation.

    Notes
    -----
    The graph is *logically undirected*: builders emit a symmetric structure
    in which every edge ``{u, v}`` is stored in both neighbour lists.  The
    class itself does not re-verify symmetry on every construction (it is an
    ``O(m log m)`` check); use :func:`repro.graph.validate.check_symmetric`
    when ingesting untrusted data.
    """

    __slots__ = ("_indptr", "_indices")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        validate: bool = True,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=VERTEX_DTYPE)
        indices = np.ascontiguousarray(indices, dtype=VERTEX_DTYPE)
        if validate:
            _validate_csr(indptr, indices)
        indptr.flags.writeable = False
        indices.flags.writeable = False
        self._indptr = indptr
        self._indices = indices

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def indptr(self) -> np.ndarray:
        """Row-pointer array (read-only view)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Flat neighbour-id array (read-only view)."""
        return self._indices

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return int(self._indptr.shape[0] - 1)

    @property
    def num_directed_edges(self) -> int:
        """Number of stored (directed) edges; ``2m`` for a symmetric graph
        without self loops."""
        return int(self._indices.shape[0])

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``.

        Self loops are stored once and counted once; ordinary edges are
        stored twice and counted once.
        """
        loops = self.num_self_loops
        return (self.num_directed_edges - loops) // 2 + loops

    @property
    def num_self_loops(self) -> int:
        """Number of self-loop entries in the adjacency structure."""
        src = self.sources()
        return int(np.count_nonzero(src == self._indices))

    # ------------------------------------------------------------------ #
    # structure queries
    # ------------------------------------------------------------------ #

    def degree(self, v: int | None = None) -> np.ndarray | int:
        """Degree of vertex ``v``, or the full degree array when ``v`` is
        omitted (counting stored directed edges, i.e. self loops count 1)."""
        if v is None:
            return np.diff(self._indptr)
        self._check_vertex(v)
        return int(self._indptr[v + 1] - self._indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Read-only view of the neighbour list of ``v``."""
        self._check_vertex(v)
        return self._indices[self._indptr[v] : self._indptr[v + 1]]

    def neighbor(self, v: int, i: int) -> int:
        """The ``i``-th stored neighbour of ``v`` (0-based).

        This is the access pattern of Afforest's neighbour-sampling rounds:
        round ``r`` touches ``neighbor(v, r - 1)`` for every vertex ``v``
        with degree at least ``r``.
        """
        self._check_vertex(v)
        lo = int(self._indptr[v])
        hi = int(self._indptr[v + 1])
        if not 0 <= i < hi - lo:
            raise IndexError(f"vertex {v} has degree {hi - lo}, no neighbor {i}")
        return int(self._indices[lo + i])

    def sources(self) -> np.ndarray:
        """Source-vertex id for every stored directed edge.

        Expands ``indptr`` to a length-``num_directed_edges`` array: entry
        ``e`` is the vertex whose neighbour list contains slot ``e``.
        """
        return np.repeat(
            np.arange(self.num_vertices, dtype=VERTEX_DTYPE), self.degree()
        )

    def edge_array(self) -> tuple[np.ndarray, np.ndarray]:
        """The stored directed edges as parallel ``(src, dst)`` arrays."""
        return self.sources(), self._indices.copy()

    def undirected_edge_array(self) -> tuple[np.ndarray, np.ndarray]:
        """Each undirected edge exactly once, as ``(src, dst)`` with
        ``src <= dst``."""
        src, dst = self.sources(), self._indices
        keep = src <= dst
        return src[keep], dst[keep].copy()

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Iterate stored directed edges as Python int pairs (slow path,
        for tests and small examples)."""
        indptr, indices = self._indptr, self._indices
        for v in range(self.num_vertices):
            for e in range(indptr[v], indptr[v + 1]):
                yield v, int(indices[e])

    def has_edge(self, u: int, v: int) -> bool:
        """True if ``v`` appears in ``u``'s neighbour list.

        Uses binary search when the neighbour list is sorted (builders sort
        by default), falling back to a linear scan otherwise.
        """
        nbrs = self.neighbors(u)
        if nbrs.size == 0:
            return False
        if _is_sorted(nbrs):
            pos = int(np.searchsorted(nbrs, v))
            return pos < nbrs.size and int(nbrs[pos]) == v
        return bool(np.any(nbrs == v))

    # ------------------------------------------------------------------ #
    # dunder / misc
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"directed_edges={self.num_directed_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return np.array_equal(self._indptr, other._indptr) and np.array_equal(
            self._indices, other._indices
        )

    def __hash__(self) -> int:
        return hash(
            (self._indptr.tobytes(), self._indices.tobytes())
        )

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise IndexError(
                f"vertex {v} out of range for graph with {self.num_vertices} vertices"
            )


def _is_sorted(a: np.ndarray) -> bool:
    return bool(np.all(a[:-1] <= a[1:]))


def _validate_csr(indptr: np.ndarray, indices: np.ndarray) -> None:
    if indptr.ndim != 1 or indices.ndim != 1:
        raise GraphFormatError("indptr and indices must be 1-D arrays")
    if indptr.shape[0] < 1:
        raise GraphFormatError("indptr must have at least one entry")
    if indptr[0] != 0:
        raise GraphFormatError(f"indptr[0] must be 0, got {indptr[0]}")
    if indptr[-1] != indices.shape[0]:
        raise GraphFormatError(
            f"indptr[-1] ({indptr[-1]}) must equal len(indices) ({indices.shape[0]})"
        )
    if np.any(np.diff(indptr) < 0):
        raise GraphFormatError("indptr must be monotone non-decreasing")
    n = indptr.shape[0] - 1
    if indices.size and (indices.min() < 0 or indices.max() >= n):
        raise GraphFormatError(
            f"neighbour ids must lie in [0, {n}); "
            f"found range [{indices.min()}, {indices.max()}]"
        )
