"""Structural validation of CSR graphs beyond the cheap constructor checks.

The constructor of :class:`~repro.graph.csr.CSRGraph` validates the index
arithmetic; the functions here perform the more expensive semantic checks
(symmetry, duplicate-freedom, sortedness) that untrusted inputs need.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph

__all__ = [
    "check_symmetric",
    "check_no_duplicates",
    "check_no_self_loops",
    "check_sorted_neighbors",
    "validate_graph",
]


def _edge_keys(graph: CSRGraph) -> np.ndarray:
    """Directed edges encoded as single int64 keys ``src * n + dst``."""
    n = max(graph.num_vertices, 1)
    src, dst = graph.sources(), graph.indices
    return src * np.int64(n) + dst


def check_symmetric(graph: CSRGraph) -> None:
    """Raise unless every edge ``(u, v)`` has a mirror ``(v, u)``.

    Self loops are their own mirror.  Parallel edges must be mirrored with
    matching multiplicity.
    """
    n = max(graph.num_vertices, 1)
    src, dst = graph.sources(), graph.indices
    fwd = np.sort(src * np.int64(n) + dst)
    rev = np.sort(dst * np.int64(n) + src)
    if not np.array_equal(fwd, rev):
        # Locate one offending edge for the message.
        diff = np.setdiff1d(fwd, rev, assume_unique=False)
        if diff.size:
            key = int(diff[0])
            raise GraphFormatError(
                f"graph is not symmetric: edge ({key // n}, {key % n}) has no mirror"
            )
        raise GraphFormatError(
            "graph is not symmetric: mirrored edge multiplicities differ"
        )


def check_no_duplicates(graph: CSRGraph) -> None:
    """Raise if any neighbour list contains a repeated vertex."""
    keys = _edge_keys(graph)
    uniq = np.unique(keys)
    if uniq.shape[0] != keys.shape[0]:
        raise GraphFormatError(
            f"graph contains {keys.shape[0] - uniq.shape[0]} duplicate edge entries"
        )


def check_no_self_loops(graph: CSRGraph) -> None:
    """Raise if the graph stores any ``(v, v)`` edge."""
    loops = graph.num_self_loops
    if loops:
        raise GraphFormatError(f"graph contains {loops} self loops")


def check_sorted_neighbors(graph: CSRGraph) -> None:
    """Raise unless every neighbour list is sorted ascending."""
    indptr, indices = graph.indptr, graph.indices
    if indices.shape[0] < 2:
        return
    # Adjacent-pair comparison, masking out pairs that straddle rows.
    ascending = indices[:-1] <= indices[1:]
    row_ends = indptr[1:-1] - 1  # last slot of each row except the final row
    row_ends = row_ends[(row_ends >= 0) & (row_ends < indices.shape[0] - 1)]
    ascending[row_ends] = True
    if not np.all(ascending):
        v = int(np.searchsorted(indptr, np.nonzero(~ascending)[0][0], side="right")) - 1
        raise GraphFormatError(f"neighbour list of vertex {v} is not sorted")


def validate_graph(
    graph: CSRGraph,
    *,
    require_sorted: bool = False,
    allow_self_loops: bool = False,
    allow_duplicates: bool = False,
) -> None:
    """Run the full semantic validation suite on ``graph``."""
    check_symmetric(graph)
    if not allow_duplicates:
        check_no_duplicates(graph)
    if not allow_self_loops:
        check_no_self_loops(graph)
    if require_sorted:
        check_sorted_neighbors(graph)
