"""NetworkX interoperability.

NetworkX is the lingua franca for small-graph work in Python; these
adapters let users bring existing graphs in and take results out.  The
test suite also uses NetworkX's ``connected_components`` as a third
independent oracle (next to sequential union-find and scipy.csgraph).

NetworkX is an *optional* dependency: importing this module without it
raises ImportError, nothing else in the library depends on it.
"""

from __future__ import annotations

import numpy as np

import networkx as nx

from repro.constants import VERTEX_DTYPE
from repro.errors import GraphFormatError
from repro.graph.builder import build_csr
from repro.graph.coo import EdgeList
from repro.graph.csr import CSRGraph

__all__ = ["from_networkx", "to_networkx", "components_as_sets"]


def from_networkx(nx_graph: "nx.Graph") -> tuple[CSRGraph, list]:
    """Convert an undirected NetworkX graph to a CSR graph.

    Node objects are mapped to dense integer ids in sorted-insertion
    order; the mapping is returned alongside the graph so labels can be
    translated back (``node = mapping[vertex_id]``).

    Directed graphs are rejected — connectivity here is undirected;
    call ``nx_graph.to_undirected()`` first if that is what you mean.
    """
    if nx_graph.is_directed():
        raise GraphFormatError(
            "directed NetworkX graphs are not supported; "
            "convert with to_undirected() first"
        )
    nodes = list(nx_graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    m = nx_graph.number_of_edges()
    src = np.empty(m, dtype=VERTEX_DTYPE)
    dst = np.empty(m, dtype=VERTEX_DTYPE)
    for i, (u, v) in enumerate(nx_graph.edges()):
        src[i] = index[u]
        dst[i] = index[v]
    graph = build_csr(EdgeList(len(nodes), src, dst))
    return graph, nodes


def to_networkx(graph: CSRGraph) -> "nx.Graph":
    """Convert a CSR graph to an undirected NetworkX graph.

    Isolated vertices are preserved as nodes.
    """
    out = nx.Graph()
    out.add_nodes_from(range(graph.num_vertices))
    src, dst = graph.undirected_edge_array()
    out.add_edges_from(zip(src.tolist(), dst.tolist()))
    return out


def components_as_sets(
    labels: np.ndarray, mapping: list | None = None
) -> list[set]:
    """Group a label array into component sets (NetworkX's output shape).

    With ``mapping`` (from :func:`from_networkx`), sets contain the
    original node objects; otherwise integer vertex ids.  Components are
    ordered by descending size (stable: ties keep first-seen order).
    """
    labels = np.asarray(labels)
    groups: dict[int, set] = {}
    for v, lab in enumerate(labels.tolist()):
        member = mapping[v] if mapping is not None else v
        groups.setdefault(int(lab), set()).add(member)
    return sorted(groups.values(), key=len, reverse=True)
