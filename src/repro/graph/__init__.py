"""Graph substrate: CSR representation, builders, I/O and properties."""

from repro.graph.coo import EdgeList
from repro.graph.csr import CSRGraph
from repro.graph.builder import GraphBuilder, from_edge_array, from_edge_list
from repro.graph.subgraph import (
    component_subgraph,
    filter_edges,
    induced_subgraph,
    largest_component_subgraph,
    split_components,
)

__all__ = [
    "CSRGraph",
    "EdgeList",
    "GraphBuilder",
    "from_edge_array",
    "from_edge_list",
    "component_subgraph",
    "filter_edges",
    "induced_subgraph",
    "largest_component_subgraph",
    "split_components",
]
