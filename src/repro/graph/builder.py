"""Construction of :class:`~repro.graph.csr.CSRGraph` from edge data.

The builders perform the normalisation pipeline the GAP suite applies when
loading graphs: symmetrize, optionally drop duplicates and self loops, then
a counting-sort CSR assembly.  Neighbour lists are sorted by default, which
both matches GAP's loader and makes ``has_edge`` logarithmic.

A note relevant to the paper: Afforest's neighbour sampling uses "the first
appearing neighbors of each vertex" (Sec. VI-A), i.e. the neighbour order in
the CSR structure is semantically meaningful for sampling quality.  Builders
therefore support ``sort_neighbors=False`` to preserve insertion order, and
:func:`repro.core.strategies` exposes explicit neighbour-order shuffles.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.errors import GraphFormatError
from repro.graph.coo import EdgeList
from repro.graph.csr import CSRGraph


def build_csr(
    edges: EdgeList,
    *,
    symmetrize: bool = True,
    dedup: bool = True,
    drop_self_loops: bool = True,
    sort_neighbors: bool = True,
) -> CSRGraph:
    """Assemble a CSR graph from an edge list.

    Parameters
    ----------
    edges:
        Input edge records (any orientation, duplicates allowed).
    symmetrize:
        Store both orientations of every edge (default).  Required by every
        algorithm in this library; disable only for layout experiments.
    dedup:
        Drop parallel edges after symmetrization.
    drop_self_loops:
        Remove ``(v, v)`` records.
    sort_neighbors:
        Sort each neighbour list ascending.  Disable to preserve the input
        edge order within each list (relevant for neighbour sampling).
    """
    el = edges
    if drop_self_loops:
        el = el.without_self_loops()
    if symmetrize:
        el = el.symmetrized()
    if dedup:
        el = el.deduplicated()

    n = el.num_vertices
    counts = np.bincount(el.src, minlength=n).astype(VERTEX_DTYPE)
    indptr = np.zeros(n + 1, dtype=VERTEX_DTYPE)
    np.cumsum(counts, out=indptr[1:])

    if sort_neighbors:
        # Lexicographic sort by (src, dst) produces CSR with sorted rows in
        # one shot; counting assembly is not needed.
        order = np.lexsort((el.dst, el.src))
        indices = el.dst[order]
    else:
        # Stable counting placement preserves per-row record order.
        order = np.argsort(el.src, kind="stable")
        indices = el.dst[order]

    return CSRGraph(indptr, indices, validate=False)


def from_edge_array(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int | None = None,
    **kwargs,
) -> CSRGraph:
    """Build a CSR graph from parallel endpoint arrays.

    ``num_vertices`` defaults to ``max(endpoint) + 1`` (0 for empty input).
    Keyword arguments are forwarded to :func:`build_csr`.
    """
    src = np.ascontiguousarray(src, dtype=VERTEX_DTYPE)
    dst = np.ascontiguousarray(dst, dtype=VERTEX_DTYPE)
    if num_vertices is None:
        num_vertices = (
            int(max(src.max(), dst.max())) + 1 if src.size else 0
        )
    return build_csr(EdgeList(num_vertices, src, dst), **kwargs)


def from_edge_list(
    pairs: Iterable[tuple[int, int]] | Sequence[tuple[int, int]],
    num_vertices: int | None = None,
    **kwargs,
) -> CSRGraph:
    """Build a CSR graph from an iterable of ``(u, v)`` pairs."""
    pairs = list(pairs)
    if pairs:
        arr = np.asarray(pairs, dtype=VERTEX_DTYPE)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphFormatError("pairs must be (u, v) tuples")
        src, dst = arr[:, 0], arr[:, 1]
    else:
        src = dst = np.empty(0, dtype=VERTEX_DTYPE)
    return from_edge_array(src, dst, num_vertices, **kwargs)


class GraphBuilder:
    """Incremental graph builder for examples and tests.

    Collects edges one at a time (amortised O(1) appends into Python lists)
    and assembles the CSR structure on :meth:`build`.
    """

    def __init__(self, num_vertices: int | None = None) -> None:
        self._num_vertices = num_vertices
        self._src: list[int] = []
        self._dst: list[int] = []

    def add_edge(self, u: int, v: int) -> "GraphBuilder":
        """Record the undirected edge ``{u, v}``; returns self for chaining."""
        if u < 0 or v < 0:
            raise GraphFormatError("vertex ids must be non-negative")
        self._src.append(u)
        self._dst.append(v)
        return self

    def add_edges(self, pairs: Iterable[tuple[int, int]]) -> "GraphBuilder":
        """Record many undirected edges."""
        for u, v in pairs:
            self.add_edge(u, v)
        return self

    def add_path(self, vertices: Sequence[int]) -> "GraphBuilder":
        """Record the path ``v0 - v1 - ... - vk``."""
        for u, v in zip(vertices, vertices[1:]):
            self.add_edge(u, v)
        return self

    def add_cycle(self, vertices: Sequence[int]) -> "GraphBuilder":
        """Record the cycle through ``vertices``."""
        self.add_path(vertices)
        if len(vertices) > 1:
            self.add_edge(vertices[-1], vertices[0])
        return self

    def add_clique(self, vertices: Sequence[int]) -> "GraphBuilder":
        """Record all edges of a clique on ``vertices``."""
        for i, u in enumerate(vertices):
            for v in vertices[i + 1 :]:
                self.add_edge(u, v)
        return self

    def add_star(self, center: int, leaves: Sequence[int]) -> "GraphBuilder":
        """Record a star: ``center`` joined to each leaf."""
        for v in leaves:
            self.add_edge(center, v)
        return self

    def build(self, **kwargs) -> CSRGraph:
        """Assemble the CSR graph (kwargs forwarded to :func:`build_csr`)."""
        n = self._num_vertices
        if n is None:
            n = max(max(self._src, default=-1), max(self._dst, default=-1)) + 1
        src = np.asarray(self._src, dtype=VERTEX_DTYPE)
        dst = np.asarray(self._dst, dtype=VERTEX_DTYPE)
        return build_csr(EdgeList(n, src, dst), **kwargs)
