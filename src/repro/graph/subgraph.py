"""Subgraph extraction: induced subgraphs, edge filters, component splits.

The downstream pattern the paper's introduction motivates — "CC as the
entry point for many computations" — is extracting each (or the giant)
component and running further analytics on it; these helpers close that
loop.
"""

from __future__ import annotations

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.errors import ConfigurationError
from repro.graph.builder import build_csr
from repro.graph.coo import EdgeList
from repro.graph.csr import CSRGraph

__all__ = [
    "induced_subgraph",
    "filter_edges",
    "component_subgraph",
    "largest_component_subgraph",
    "split_components",
]


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """The subgraph induced by ``vertices``, with compacted ids.

    Returns ``(subgraph, mapping)`` where ``mapping[i]`` is the original
    id of the subgraph's vertex ``i``.  Duplicate entries in ``vertices``
    are rejected.
    """
    vertices = np.ascontiguousarray(vertices, dtype=VERTEX_DTYPE)
    if vertices.size and (
        vertices.min() < 0 or vertices.max() >= graph.num_vertices
    ):
        raise ConfigurationError("vertex id out of range")
    if np.unique(vertices).shape[0] != vertices.shape[0]:
        raise ConfigurationError("vertex list contains duplicates")
    n_sub = int(vertices.shape[0])
    # Old id -> new id (or -1 when excluded).
    back = np.full(graph.num_vertices, -1, dtype=VERTEX_DTYPE)
    back[vertices] = np.arange(n_sub, dtype=VERTEX_DTYPE)

    src, dst = graph.undirected_edge_array()
    keep = (back[src] >= 0) & (back[dst] >= 0)
    el = EdgeList(n_sub, back[src[keep]], back[dst[keep]])
    return build_csr(el), vertices.copy()


def filter_edges(graph: CSRGraph, keep: np.ndarray) -> CSRGraph:
    """Drop undirected edges where ``keep`` is False.

    ``keep`` is indexed parallel to ``graph.undirected_edge_array()``.
    The vertex set (including newly isolated vertices) is preserved.
    """
    src, dst = graph.undirected_edge_array()
    keep = np.asarray(keep, dtype=bool)
    if keep.shape[0] != src.shape[0]:
        raise ConfigurationError(
            f"keep mask has {keep.shape[0]} entries for {src.shape[0]} edges"
        )
    return build_csr(EdgeList(graph.num_vertices, src[keep], dst[keep]))


def component_subgraph(
    graph: CSRGraph, labels: np.ndarray, label: int
) -> tuple[CSRGraph, np.ndarray]:
    """The induced subgraph of one component (by its label)."""
    labels = np.asarray(labels)
    if labels.shape[0] != graph.num_vertices:
        raise ConfigurationError("labels length must equal num_vertices")
    members = np.nonzero(labels == label)[0].astype(VERTEX_DTYPE)
    if members.size == 0:
        raise ConfigurationError(f"no vertices carry label {label}")
    return induced_subgraph(graph, members)


def largest_component_subgraph(
    graph: CSRGraph, labels: np.ndarray | None = None
) -> tuple[CSRGraph, np.ndarray]:
    """The induced subgraph of the largest component.

    Computes the labeling with Afforest when not supplied.
    """
    if labels is None:
        from repro.core.afforest import afforest

        labels = afforest(graph).labels
    labels = np.asarray(labels)
    counts = np.bincount(labels, minlength=graph.num_vertices)
    return component_subgraph(graph, labels, int(np.argmax(counts)))


def split_components(
    graph: CSRGraph, labels: np.ndarray | None = None, *, min_size: int = 1
) -> list[tuple[CSRGraph, np.ndarray]]:
    """All components as separate compacted subgraphs, largest first.

    ``min_size`` filters out small components (e.g. singletons).
    """
    if labels is None:
        from repro.core.afforest import afforest

        labels = afforest(graph).labels
    labels = np.asarray(labels)
    uniq, counts = np.unique(labels, return_counts=True)
    order = np.argsort(counts)[::-1]
    out = []
    for idx in order:
        if counts[idx] < min_size:
            continue
        out.append(component_subgraph(graph, labels, int(uniq[idx])))
    return out
