"""Graph serialization: edge-list text, METIS, and binary ``.npz``.

Three interchange formats cover the ecosystems the paper's datasets come
from:

- **edge-list text** (``.el`` — the GAP loader's plain format): one
  ``u v`` pair per line, ``#`` comments allowed;
- **METIS** (``.graph``): header ``n m`` then one line of (1-based)
  neighbours per vertex;
- **npz binary**: the CSR arrays verbatim, the fastest round-trip.

The edge-list and npz paths additionally support **chunked / out-of-core
loading** for datasets too large to stage as a whole COO edge list
(2^24-vertex synthetics and beyond): ``read_edge_list(path,
chunk_edges=...)`` streams fixed-size edge blocks through the two-pass
:func:`build_csr_streaming` assembly (degree count, then direct CSR
placement — the peak footprint is the CSR itself plus one block), and
``save_npz(graph, path, chunk_edges=...)`` splits ``indices`` into
bounded archive members that :func:`load_npz` streams back into a
preallocated array one member at a time.
"""

from __future__ import annotations

import io
import os
from pathlib import Path
from typing import Callable, Iterable, Iterator, TextIO

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.errors import GraphFormatError
from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "iter_edge_list_chunks",
    "build_csr_streaming",
    "read_metis",
    "write_metis",
    "load_npz",
    "save_npz",
    "load_graph",
    "save_graph",
]


# --------------------------------------------------------------------- #
# edge-list text
# --------------------------------------------------------------------- #


def _parse_edge_line(line: str, lineno: int) -> tuple[int, int] | None:
    """One edge-list line -> ``(u, v)``, or ``None`` for comments/blanks."""
    line = line.strip()
    if not line or line[0] in "#%":
        return None
    parts = line.split()
    if len(parts) < 2:
        raise GraphFormatError(
            f"edge list line {lineno}: expected at least two columns"
        )
    try:
        return int(parts[0]), int(parts[1])
    except ValueError as exc:
        raise GraphFormatError(
            f"edge list line {lineno}: non-integer endpoint"
        ) from exc


def iter_edge_list_chunks(
    fh: TextIO, chunk_edges: int
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Stream an open edge-list file as ``(src, dst)`` array blocks of at
    most ``chunk_edges`` edges, with the same comment/column semantics as
    :func:`read_edge_list`."""
    if chunk_edges < 1:
        raise GraphFormatError(
            f"chunk_edges must be >= 1, got {chunk_edges}"
        )
    src_l: list[int] = []
    dst_l: list[int] = []
    for lineno, line in enumerate(fh, 1):
        parsed = _parse_edge_line(line, lineno)
        if parsed is None:
            continue
        src_l.append(parsed[0])
        dst_l.append(parsed[1])
        if len(src_l) >= chunk_edges:
            yield (
                np.asarray(src_l, dtype=VERTEX_DTYPE),
                np.asarray(dst_l, dtype=VERTEX_DTYPE),
            )
            src_l, dst_l = [], []
    if src_l:
        yield (
            np.asarray(src_l, dtype=VERTEX_DTYPE),
            np.asarray(dst_l, dtype=VERTEX_DTYPE),
        )


def _place_chunk(
    buf: np.ndarray, cursor: np.ndarray, u: np.ndarray, v: np.ndarray
) -> None:
    """Scatter one direction of an edge block into the CSR slab: every
    ``v`` lands in row ``u``'s next free slots (duplicate rows within the
    block get consecutive positions)."""
    if u.shape[0] == 0:
        return
    order = np.argsort(u, kind="stable")
    us = u[order]
    uniq, first, cnt = np.unique(us, return_index=True, return_counts=True)
    within = np.arange(us.shape[0], dtype=np.int64) - np.repeat(first, cnt)
    buf[cursor[us] + within] = v[order]
    cursor[uniq] += cnt


def build_csr_streaming(
    chunk_factory: Callable[[], Iterable[tuple[np.ndarray, np.ndarray]]],
    num_vertices: int | None = None,
) -> CSRGraph:
    """Two-pass out-of-core CSR assembly from an edge-block stream.

    ``chunk_factory`` is called twice and must each time yield the same
    sequence of ``(src, dst)`` edge blocks (re-reading a file, re-seeding
    a generator).  Pass one counts degrees (and discovers ``num_vertices``
    when not given); pass two scatters both edge directions straight into
    the CSR slab.  A final in-place per-row sort + dedup reproduces
    :func:`~repro.graph.builder.build_csr`'s default normalisation
    (symmetrize, drop self loops, dedup, sorted neighbours) bit-exactly —
    but the whole COO edge list is never materialised: peak memory is the
    raw CSR slab plus one block.
    """
    # Pass 1: degree counts (both directions, self loops dropped).
    counts = np.zeros(
        0 if num_vertices is None else num_vertices, dtype=np.int64
    )
    for src, dst in chunk_factory():
        if src.shape[0] == 0:
            continue
        if src.min() < 0 or dst.min() < 0:
            raise GraphFormatError("vertex ids must be non-negative")
        # Vertex-count discovery sees raw endpoints (before the self-loop
        # filter) to match from_edge_array's ``max(endpoint) + 1``.
        hi = int(max(src.max(), dst.max())) + 1
        if num_vertices is None:
            if hi > counts.shape[0]:
                counts = np.concatenate(
                    [counts, np.zeros(hi - counts.shape[0], dtype=np.int64)]
                )
        elif hi > num_vertices:
            raise GraphFormatError(
                f"vertex id {hi - 1} out of range for {num_vertices} vertices"
            )
        keep = src != dst
        src, dst = src[keep], dst[keep]
        if src.shape[0] == 0:
            continue
        counts += np.bincount(src, minlength=counts.shape[0])
        counts += np.bincount(dst, minlength=counts.shape[0])
    n = counts.shape[0]
    raw_indptr = np.zeros(n + 1, dtype=VERTEX_DTYPE)
    np.cumsum(counts, out=raw_indptr[1:])
    m_raw = int(raw_indptr[-1])

    # Pass 2: direct placement of both directions into the slab.
    buf = np.empty(m_raw, dtype=VERTEX_DTYPE)
    cursor = raw_indptr[:-1].astype(np.int64)
    for src, dst in chunk_factory():
        keep = src != dst
        src, dst = src[keep], dst[keep]
        _place_chunk(buf, cursor, src, dst)
        _place_chunk(buf, cursor, dst, src)
    if not np.array_equal(cursor, raw_indptr[1:]):
        raise GraphFormatError(
            "chunk_factory yielded different edges across passes"
        )
    if m_raw == 0:
        return CSRGraph(raw_indptr, buf, validate=False)

    # Compaction: sort each row, drop duplicate neighbours.
    rowid = np.repeat(np.arange(n, dtype=VERTEX_DTYPE), counts)
    order = np.lexsort((buf, rowid))
    buf = buf[order]
    rowid = rowid[order]
    keep_mask = np.ones(m_raw, dtype=bool)
    keep_mask[1:] = (buf[1:] != buf[:-1]) | (rowid[1:] != rowid[:-1])
    indices = buf[keep_mask]
    final_counts = np.bincount(rowid[keep_mask], minlength=n)
    indptr = np.zeros(n + 1, dtype=VERTEX_DTYPE)
    np.cumsum(final_counts, out=indptr[1:])
    return CSRGraph(indptr, indices, validate=False)


def read_edge_list(
    path: str | os.PathLike | TextIO,
    *,
    chunk_edges: int | None = None,
    **build_kwargs,
) -> CSRGraph:
    """Read a whitespace-separated edge-list file into a CSR graph.

    Lines starting with ``#`` or ``%`` are comments; blank lines are
    skipped.  Extra columns beyond the first two (e.g. weights) are ignored.

    ``chunk_edges`` switches to the out-of-core path: the file is parsed
    twice in blocks of that many edges through
    :func:`build_csr_streaming`, producing a bit-identical graph without
    ever staging the whole edge list in memory.  The chunked path applies
    the default normalisation only, so it accepts no ``build_kwargs``.
    """
    if chunk_edges is not None:
        if build_kwargs:
            raise GraphFormatError(
                "chunked edge-list loading supports only the default "
                f"normalisation; got {sorted(build_kwargs)}"
            )
        if isinstance(path, (str, os.PathLike)):
            def chunks() -> Iterator[tuple[np.ndarray, np.ndarray]]:
                with open(path, "r", encoding="utf-8") as fh:
                    yield from iter_edge_list_chunks(fh, chunk_edges)
        else:
            def chunks() -> Iterator[tuple[np.ndarray, np.ndarray]]:
                path.seek(0)
                yield from iter_edge_list_chunks(path, chunk_edges)
        return build_csr_streaming(chunks)
    close = False
    if isinstance(path, (str, os.PathLike)):
        fh: TextIO = open(path, "r", encoding="utf-8")
        close = True
    else:
        fh = path
    try:
        src_l: list[int] = []
        dst_l: list[int] = []
        for lineno, line in enumerate(fh, 1):
            parsed = _parse_edge_line(line, lineno)
            if parsed is None:
                continue
            src_l.append(parsed[0])
            dst_l.append(parsed[1])
    finally:
        if close:
            fh.close()
    src = np.asarray(src_l, dtype=VERTEX_DTYPE)
    dst = np.asarray(dst_l, dtype=VERTEX_DTYPE)
    return from_edge_array(src, dst, **build_kwargs)


def write_edge_list(graph: CSRGraph, path: str | os.PathLike | TextIO) -> None:
    """Write each undirected edge once as a ``u v`` line."""
    close = False
    if isinstance(path, (str, os.PathLike)):
        fh: TextIO = open(path, "w", encoding="utf-8")
        close = True
    else:
        fh = path
    try:
        src, dst = graph.undirected_edge_array()
        buf = io.StringIO()
        for u, v in zip(src, dst):
            buf.write(f"{u} {v}\n")
        fh.write(buf.getvalue())
    finally:
        if close:
            fh.close()


# --------------------------------------------------------------------- #
# METIS
# --------------------------------------------------------------------- #


def read_metis(path: str | os.PathLike) -> CSRGraph:
    """Read a METIS ``.graph`` file (unweighted, 1-based vertex ids)."""
    with open(path, "r", encoding="utf-8") as fh:
        header: list[str] | None = None
        rows: list[list[int]] = []
        for line in fh:
            line = line.strip()
            if line.startswith("%"):
                continue
            if header is None:
                if not line:
                    continue  # leading blank lines before the header
                header = line.split()
                continue
            # After the header every non-comment line is a vertex row; a
            # blank line is a vertex with no neighbours.
            rows.append([int(tok) for tok in line.split()])
    if header is None:
        raise GraphFormatError("METIS file has no header line")
    if len(header) < 2:
        raise GraphFormatError("METIS header must contain 'n m'")
    n, m = int(header[0]), int(header[1])
    if len(header) >= 3 and header[2] not in ("0", "00", "000"):
        raise GraphFormatError("weighted METIS graphs are not supported")
    if len(rows) != n:
        raise GraphFormatError(
            f"METIS header declares {n} vertices but file has {len(rows)} rows"
        )
    indptr = np.zeros(n + 1, dtype=VERTEX_DTYPE)
    for v, row in enumerate(rows):
        indptr[v + 1] = indptr[v] + len(row)
    indices = np.fromiter(
        (w - 1 for row in rows for w in row),
        dtype=VERTEX_DTYPE,
        count=int(indptr[-1]),
    )
    graph = CSRGraph(indptr, indices)
    if graph.num_edges != m:
        raise GraphFormatError(
            f"METIS header declares {m} edges but adjacency encodes {graph.num_edges}"
        )
    return graph


def write_metis(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write a METIS ``.graph`` file (unweighted, 1-based vertex ids)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"{graph.num_vertices} {graph.num_edges}\n")
        for v in range(graph.num_vertices):
            fh.write(" ".join(str(int(w) + 1) for w in graph.neighbors(v)))
            fh.write("\n")


# --------------------------------------------------------------------- #
# npz binary
# --------------------------------------------------------------------- #


def save_npz(
    graph: CSRGraph,
    path: str | os.PathLike,
    *,
    chunk_edges: int | None = None,
) -> None:
    """Save the CSR arrays to a compressed ``.npz`` file.

    With ``chunk_edges`` the ``indices`` array is split into archive
    members ``indices_00000``, ``indices_00001``, ... of at most that many
    entries, so :func:`load_npz` can decompress one bounded member at a
    time instead of inflating the whole adjacency in one shot.
    """
    if chunk_edges is None:
        np.savez_compressed(
            Path(path), indptr=graph.indptr, indices=graph.indices
        )
        return
    if chunk_edges < 1:
        raise GraphFormatError(
            f"chunk_edges must be >= 1, got {chunk_edges}"
        )
    members = {
        f"indices_{i:05d}": graph.indices[lo : lo + chunk_edges]
        for i, lo in enumerate(
            range(0, max(graph.indices.shape[0], 1), chunk_edges)
        )
    }
    np.savez_compressed(Path(path), indptr=graph.indptr, **members)


def load_npz(path: str | os.PathLike) -> CSRGraph:
    """Load a graph previously saved with :func:`save_npz`.

    Detects both layouts: a monolithic ``indices`` array, or the chunked
    ``indices_NNNNN`` members, which are streamed sequentially into a
    preallocated array (peak extra memory: one decompressed chunk).
    """
    with np.load(Path(path)) as data:
        if "indptr" not in data:
            raise GraphFormatError("npz file missing 'indptr'/'indices' arrays")
        if "indices" in data:
            return CSRGraph(data["indptr"], data["indices"])
        chunk_names = sorted(
            name for name in data.files if name.startswith("indices_")
        )
        if not chunk_names:
            raise GraphFormatError("npz file missing 'indptr'/'indices' arrays")
        expected = [f"indices_{i:05d}" for i in range(len(chunk_names))]
        if chunk_names != expected:
            raise GraphFormatError(
                "chunked npz has non-contiguous indices members: "
                f"{chunk_names}"
            )
        indptr = np.ascontiguousarray(data["indptr"], dtype=VERTEX_DTYPE)
        if indptr.ndim != 1 or indptr.shape[0] < 1:
            raise GraphFormatError("npz indptr must be a 1-D array")
        total = int(indptr[-1])
        indices = np.empty(total, dtype=VERTEX_DTYPE)
        cursor = 0
        for name in chunk_names:
            chunk = data[name]
            end = cursor + chunk.shape[0]
            if end > total:
                raise GraphFormatError(
                    f"chunked npz indices overflow indptr[-1]={total}"
                )
            indices[cursor:end] = chunk
            cursor = end
        if cursor != total:
            raise GraphFormatError(
                f"chunked npz indices truncated: got {cursor} of {total}"
            )
        return CSRGraph(indptr, indices)


# --------------------------------------------------------------------- #
# extension dispatch
# --------------------------------------------------------------------- #

_LOADERS = {
    ".el": read_edge_list,
    ".txt": read_edge_list,
    ".edges": read_edge_list,
    ".graph": read_metis,
    ".metis": read_metis,
    ".npz": load_npz,
}

_SAVERS = {
    ".el": write_edge_list,
    ".txt": write_edge_list,
    ".edges": write_edge_list,
    ".graph": write_metis,
    ".metis": write_metis,
    ".npz": save_npz,
}


def load_graph(path: str | os.PathLike) -> CSRGraph:
    """Load a graph, dispatching on file extension."""
    suffix = Path(path).suffix.lower()
    loader = _LOADERS.get(suffix)
    if loader is None:
        raise GraphFormatError(f"unrecognised graph file extension: {suffix!r}")
    return loader(path)


def save_graph(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Save a graph, dispatching on file extension."""
    suffix = Path(path).suffix.lower()
    saver = _SAVERS.get(suffix)
    if saver is None:
        raise GraphFormatError(f"unrecognised graph file extension: {suffix!r}")
    saver(graph, path)
