"""Graph serialization: edge-list text, METIS, and binary ``.npz``.

Three interchange formats cover the ecosystems the paper's datasets come
from:

- **edge-list text** (``.el`` — the GAP loader's plain format): one
  ``u v`` pair per line, ``#`` comments allowed;
- **METIS** (``.graph``): header ``n m`` then one line of (1-based)
  neighbours per vertex;
- **npz binary**: the CSR arrays verbatim, the fastest round-trip.
"""

from __future__ import annotations

import io
import os
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.errors import GraphFormatError
from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_metis",
    "write_metis",
    "load_npz",
    "save_npz",
    "load_graph",
    "save_graph",
]


# --------------------------------------------------------------------- #
# edge-list text
# --------------------------------------------------------------------- #


def read_edge_list(path: str | os.PathLike | TextIO, **build_kwargs) -> CSRGraph:
    """Read a whitespace-separated edge-list file into a CSR graph.

    Lines starting with ``#`` or ``%`` are comments; blank lines are
    skipped.  Extra columns beyond the first two (e.g. weights) are ignored.
    """
    close = False
    if isinstance(path, (str, os.PathLike)):
        fh: TextIO = open(path, "r", encoding="utf-8")
        close = True
    else:
        fh = path
    try:
        src_l: list[int] = []
        dst_l: list[int] = []
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"edge list line {lineno}: expected at least two columns"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(
                    f"edge list line {lineno}: non-integer endpoint"
                ) from exc
            src_l.append(u)
            dst_l.append(v)
    finally:
        if close:
            fh.close()
    src = np.asarray(src_l, dtype=VERTEX_DTYPE)
    dst = np.asarray(dst_l, dtype=VERTEX_DTYPE)
    return from_edge_array(src, dst, **build_kwargs)


def write_edge_list(graph: CSRGraph, path: str | os.PathLike | TextIO) -> None:
    """Write each undirected edge once as a ``u v`` line."""
    close = False
    if isinstance(path, (str, os.PathLike)):
        fh: TextIO = open(path, "w", encoding="utf-8")
        close = True
    else:
        fh = path
    try:
        src, dst = graph.undirected_edge_array()
        buf = io.StringIO()
        for u, v in zip(src, dst):
            buf.write(f"{u} {v}\n")
        fh.write(buf.getvalue())
    finally:
        if close:
            fh.close()


# --------------------------------------------------------------------- #
# METIS
# --------------------------------------------------------------------- #


def read_metis(path: str | os.PathLike) -> CSRGraph:
    """Read a METIS ``.graph`` file (unweighted, 1-based vertex ids)."""
    with open(path, "r", encoding="utf-8") as fh:
        header: list[str] | None = None
        rows: list[list[int]] = []
        for line in fh:
            line = line.strip()
            if line.startswith("%"):
                continue
            if header is None:
                if not line:
                    continue  # leading blank lines before the header
                header = line.split()
                continue
            # After the header every non-comment line is a vertex row; a
            # blank line is a vertex with no neighbours.
            rows.append([int(tok) for tok in line.split()])
    if header is None:
        raise GraphFormatError("METIS file has no header line")
    if len(header) < 2:
        raise GraphFormatError("METIS header must contain 'n m'")
    n, m = int(header[0]), int(header[1])
    if len(header) >= 3 and header[2] not in ("0", "00", "000"):
        raise GraphFormatError("weighted METIS graphs are not supported")
    if len(rows) != n:
        raise GraphFormatError(
            f"METIS header declares {n} vertices but file has {len(rows)} rows"
        )
    indptr = np.zeros(n + 1, dtype=VERTEX_DTYPE)
    for v, row in enumerate(rows):
        indptr[v + 1] = indptr[v] + len(row)
    indices = np.fromiter(
        (w - 1 for row in rows for w in row),
        dtype=VERTEX_DTYPE,
        count=int(indptr[-1]),
    )
    graph = CSRGraph(indptr, indices)
    if graph.num_edges != m:
        raise GraphFormatError(
            f"METIS header declares {m} edges but adjacency encodes {graph.num_edges}"
        )
    return graph


def write_metis(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write a METIS ``.graph`` file (unweighted, 1-based vertex ids)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"{graph.num_vertices} {graph.num_edges}\n")
        for v in range(graph.num_vertices):
            fh.write(" ".join(str(int(w) + 1) for w in graph.neighbors(v)))
            fh.write("\n")


# --------------------------------------------------------------------- #
# npz binary
# --------------------------------------------------------------------- #


def save_npz(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Save the CSR arrays to a compressed ``.npz`` file."""
    np.savez_compressed(
        Path(path), indptr=graph.indptr, indices=graph.indices
    )


def load_npz(path: str | os.PathLike) -> CSRGraph:
    """Load a graph previously saved with :func:`save_npz`."""
    with np.load(Path(path)) as data:
        if "indptr" not in data or "indices" not in data:
            raise GraphFormatError("npz file missing 'indptr'/'indices' arrays")
        return CSRGraph(data["indptr"], data["indices"])


# --------------------------------------------------------------------- #
# extension dispatch
# --------------------------------------------------------------------- #

_LOADERS = {
    ".el": read_edge_list,
    ".txt": read_edge_list,
    ".edges": read_edge_list,
    ".graph": read_metis,
    ".metis": read_metis,
    ".npz": load_npz,
}

_SAVERS = {
    ".el": write_edge_list,
    ".txt": write_edge_list,
    ".edges": write_edge_list,
    ".graph": write_metis,
    ".metis": write_metis,
    ".npz": save_npz,
}


def load_graph(path: str | os.PathLike) -> CSRGraph:
    """Load a graph, dispatching on file extension."""
    suffix = Path(path).suffix.lower()
    loader = _LOADERS.get(suffix)
    if loader is None:
        raise GraphFormatError(f"unrecognised graph file extension: {suffix!r}")
    return loader(path)


def save_graph(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Save a graph, dispatching on file extension."""
    suffix = Path(path).suffix.lower()
    saver = _SAVERS.get(suffix)
    if saver is None:
        raise GraphFormatError(f"unrecognised graph file extension: {suffix!r}")
    saver(graph, path)
