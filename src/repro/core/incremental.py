"""Incremental connectivity on top of the ``link`` primitive.

Afforest's ``link`` is exactly an edge-insertion operation on the parent
forest (Theorem 1 holds for any edge order, including one interleaved
with queries), so the library gets incremental connectivity — the
streaming-graph workload that motivates much of the CC literature — for
free.  :class:`IncrementalConnectivity` packages it with amortised path
compression and component bookkeeping.

Deletions are not supported (the tree-hooking family is inherently
incremental-only); rebuild via :func:`repro.core.afforest.afforest` when
edges disappear.
"""

from __future__ import annotations

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.core.compress import compress_all
from repro.core.link import link, link_batch
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.unionfind.parent import ParentArray


class IncrementalConnectivity:
    """Connectivity under streaming edge insertions.

    Parameters
    ----------
    num_vertices:
        Fixed vertex universe (vertices cannot be added later).
    compress_every:
        A full vectorized compression runs after this many insertions,
        bounding tree depths (the incremental analogue of Afforest's
        interleaved ``compress`` phases).  ``0`` disables periodic
        compression entirely; correctness is then carried by the *lazy*
        query paths instead: :meth:`find` path-compresses exactly the
        chain it walks (and nothing else), the batch queries
        (:meth:`same_component_batch`, :meth:`roots_of`) chase parent
        pointers without mutating π at all, and :meth:`labels` /
        :meth:`component_sizes` still perform a full compression as a
        side effect.  Deep trees therefore cost O(depth) per query
        until something compresses them, but every answer stays exact.
    """

    def __init__(self, num_vertices: int, *, compress_every: int = 4096) -> None:
        if num_vertices < 0:
            raise ConfigurationError(
                f"num_vertices must be >= 0, got {num_vertices}"
            )
        if compress_every < 0:
            raise ConfigurationError(
                f"compress_every must be >= 0, got {compress_every}"
            )
        self._pi = np.arange(num_vertices, dtype=VERTEX_DTYPE)
        self._compress_every = compress_every
        self._since_compress = 0
        self._num_components = num_vertices
        self._edges_inserted = 0

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_graph(cls, graph: CSRGraph, **kwargs) -> "IncrementalConnectivity":
        """Start from an existing graph's connectivity (bulk-loaded)."""
        inc = cls(graph.num_vertices, **kwargs)
        src, dst = graph.undirected_edge_array()
        inc.add_edges(src, dst)
        return inc

    @classmethod
    def from_labels(
        cls, labels: np.ndarray, **kwargs
    ) -> "IncrementalConnectivity":
        """Adopt a solved labeling (any valid parent array) as the start.

        ``labels`` must satisfy Invariant 1 (``pi[x] <= x``, acyclic) —
        exactly what every engine finish produces — so a batch solve can
        be promoted into a streaming structure without replaying edges.
        The array is copied; the caller's labeling stays untouched.
        """
        parents = ParentArray(np.asarray(labels))  # copies
        parents.check_invariant1()
        inc = cls(int(labels.shape[0]), **kwargs)
        inc._pi = parents.pi
        inc._num_components = parents.num_trees()
        return inc

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def add_edge(self, u: int, v: int) -> bool:
        """Insert edge ``{u, v}``; True if it connected two components."""
        self._check(u)
        self._check(v)
        merged = link(self._pi, u, v)
        if merged:
            self._num_components -= 1
        self._edges_inserted += 1
        self._maybe_compress(1)
        return merged

    def add_edges(self, src: np.ndarray, dst: np.ndarray) -> int:
        """Bulk insertion; returns the number of components merged."""
        src = np.ascontiguousarray(src, dtype=VERTEX_DTYPE)
        dst = np.ascontiguousarray(dst, dtype=VERTEX_DTYPE)
        if src.shape != dst.shape:
            raise ConfigurationError("src/dst must have equal length")
        if src.size and (
            min(src.min(), dst.min()) < 0
            or max(src.max(), dst.max()) >= self.num_vertices
        ):
            raise ConfigurationError("edge endpoint out of range")
        before = self._count_components_exact()
        link_batch(self._pi, src, dst)
        self._edges_inserted += int(src.shape[0])
        self._maybe_compress(int(src.shape[0]))
        after = self._count_components_exact()
        merged = before - after
        self._num_components = after
        return merged

    def _maybe_compress(self, inserted: int) -> None:
        if self._compress_every == 0:
            return
        self._since_compress += inserted
        if self._since_compress >= self._compress_every:
            compress_all(self._pi)
            self._since_compress = 0

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        return int(self._pi.shape[0])

    @property
    def num_components(self) -> int:
        """Current number of connected components."""
        return self._num_components

    @property
    def edges_inserted(self) -> int:
        return self._edges_inserted

    def find(self, v: int) -> int:
        """Component representative of ``v`` (with path compression)."""
        self._check(v)
        pi = self._pi
        root = v
        while pi[root] != root:
            root = int(pi[root])
        # Path compression: point the walked chain at the root.
        while pi[v] != root:
            pi[v], v = root, int(pi[v])
        return root

    def connected(self, u: int, v: int) -> bool:
        """True if ``u`` and ``v`` are currently in the same component."""
        return self.find(u) == self.find(v)

    def roots_of(self, vs: np.ndarray) -> np.ndarray:
        """Component representatives of a vertex batch, vectorized.

        Chases parent pointers for the whole batch at once (one gather
        per surviving tree level), so the cost is O(batch · depth)
        vectorized work rather than a Python loop over :meth:`find`
        calls.  π is *not* mutated — the lazy self-compression stays on
        the scalar :meth:`find` path — which keeps batch reads safe to
        run against a structure another code path is inserting into.
        """
        vs = np.ascontiguousarray(vs, dtype=VERTEX_DTYPE)
        self._check_batch(vs)
        pi = self._pi
        roots = pi[vs]
        while True:
            parents = pi[roots]
            if np.array_equal(parents, roots):
                return roots
            roots = parents

    def same_component_batch(
        self, us: np.ndarray, vs: np.ndarray
    ) -> np.ndarray:
        """Vectorized ``connected``: one boolean per ``(us[i], vs[i])``."""
        us = np.ascontiguousarray(us, dtype=VERTEX_DTYPE)
        vs = np.ascontiguousarray(vs, dtype=VERTEX_DTYPE)
        if us.shape != vs.shape:
            raise ConfigurationError("us/vs must have equal length")
        # One fused root chase over both endpoint batches: the per-level
        # gather cost is paid once instead of twice.
        roots = self.roots_of(np.concatenate([us, vs]))
        return roots[: us.shape[0]] == roots[us.shape[0] :]

    def component_sizes(self, vs: np.ndarray) -> np.ndarray:
        """Current component size for each vertex in ``vs``.

        Needs a full census, so this compresses π as a side effect
        (like :meth:`labels`) and counts every component once; the
        per-vertex lookup afterwards is a single gather.
        """
        vs = np.ascontiguousarray(vs, dtype=VERTEX_DTYPE)
        self._check_batch(vs)
        labels = self.labels()
        counts = np.bincount(labels, minlength=self.num_vertices)
        return counts[labels[vs]]

    def component_of(self, v: int) -> np.ndarray:
        """All vertices currently in ``v``'s component (O(n) scan)."""
        labels = self.labels()
        return np.nonzero(labels == labels[v])[0]

    def labels(self) -> np.ndarray:
        """A full component labeling (compresses as a side effect)."""
        compress_all(self._pi)
        self._since_compress = 0
        return self._pi.copy()

    def _count_components_exact(self) -> int:
        return ParentArray(self._pi).num_trees()

    def _check(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise ConfigurationError(
                f"vertex {v} out of range for {self.num_vertices}-vertex universe"
            )

    def _check_batch(self, vs: np.ndarray) -> None:
        if vs.size and (
            int(vs.min()) < 0 or int(vs.max()) >= self.num_vertices
        ):
            raise ConfigurationError(
                f"vertex batch out of range for {self.num_vertices}-vertex"
                " universe"
            )
