"""Incremental connectivity on top of the ``link`` primitive.

Afforest's ``link`` is exactly an edge-insertion operation on the parent
forest (Theorem 1 holds for any edge order, including one interleaved
with queries), so the library gets incremental connectivity — the
streaming-graph workload that motivates much of the CC literature — for
free.  :class:`IncrementalConnectivity` packages it with amortised path
compression and component bookkeeping.

Deletions are not supported (the tree-hooking family is inherently
incremental-only); rebuild via :func:`repro.core.afforest.afforest` when
edges disappear.
"""

from __future__ import annotations

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.core.compress import compress_all
from repro.core.link import link, link_batch
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.unionfind.parent import ParentArray


class IncrementalConnectivity:
    """Connectivity under streaming edge insertions.

    Parameters
    ----------
    num_vertices:
        Fixed vertex universe (vertices cannot be added later).
    compress_every:
        A full vectorized compression runs after this many insertions,
        bounding tree depths (the incremental analogue of Afforest's
        interleaved ``compress`` phases).  ``0`` disables periodic
        compression (queries still self-compress lazily).
    """

    def __init__(self, num_vertices: int, *, compress_every: int = 4096) -> None:
        if num_vertices < 0:
            raise ConfigurationError(
                f"num_vertices must be >= 0, got {num_vertices}"
            )
        if compress_every < 0:
            raise ConfigurationError(
                f"compress_every must be >= 0, got {compress_every}"
            )
        self._pi = np.arange(num_vertices, dtype=VERTEX_DTYPE)
        self._compress_every = compress_every
        self._since_compress = 0
        self._num_components = num_vertices
        self._edges_inserted = 0

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_graph(cls, graph: CSRGraph, **kwargs) -> "IncrementalConnectivity":
        """Start from an existing graph's connectivity (bulk-loaded)."""
        inc = cls(graph.num_vertices, **kwargs)
        src, dst = graph.undirected_edge_array()
        inc.add_edges(src, dst)
        return inc

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def add_edge(self, u: int, v: int) -> bool:
        """Insert edge ``{u, v}``; True if it connected two components."""
        self._check(u)
        self._check(v)
        merged = link(self._pi, u, v)
        if merged:
            self._num_components -= 1
        self._edges_inserted += 1
        self._maybe_compress(1)
        return merged

    def add_edges(self, src: np.ndarray, dst: np.ndarray) -> int:
        """Bulk insertion; returns the number of components merged."""
        src = np.ascontiguousarray(src, dtype=VERTEX_DTYPE)
        dst = np.ascontiguousarray(dst, dtype=VERTEX_DTYPE)
        if src.shape != dst.shape:
            raise ConfigurationError("src/dst must have equal length")
        if src.size and (
            min(src.min(), dst.min()) < 0
            or max(src.max(), dst.max()) >= self.num_vertices
        ):
            raise ConfigurationError("edge endpoint out of range")
        before = self._count_components_exact()
        link_batch(self._pi, src, dst)
        self._edges_inserted += int(src.shape[0])
        self._maybe_compress(int(src.shape[0]))
        after = self._count_components_exact()
        merged = before - after
        self._num_components = after
        return merged

    def _maybe_compress(self, inserted: int) -> None:
        if self._compress_every == 0:
            return
        self._since_compress += inserted
        if self._since_compress >= self._compress_every:
            compress_all(self._pi)
            self._since_compress = 0

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        return int(self._pi.shape[0])

    @property
    def num_components(self) -> int:
        """Current number of connected components."""
        return self._num_components

    @property
    def edges_inserted(self) -> int:
        return self._edges_inserted

    def find(self, v: int) -> int:
        """Component representative of ``v`` (with path compression)."""
        self._check(v)
        pi = self._pi
        root = v
        while pi[root] != root:
            root = int(pi[root])
        # Path compression: point the walked chain at the root.
        while pi[v] != root:
            pi[v], v = root, int(pi[v])
        return root

    def connected(self, u: int, v: int) -> bool:
        """True if ``u`` and ``v`` are currently in the same component."""
        return self.find(u) == self.find(v)

    def component_of(self, v: int) -> np.ndarray:
        """All vertices currently in ``v``'s component (O(n) scan)."""
        labels = self.labels()
        return np.nonzero(labels == labels[v])[0]

    def labels(self) -> np.ndarray:
        """A full component labeling (compresses as a side effect)."""
        compress_all(self._pi)
        self._since_compress = 0
        return self._pi.copy()

    def _count_components_exact(self) -> int:
        return ParentArray(self._pi).num_trees()

    def _check(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise ConfigurationError(
                f"vertex {v} out of range for {self.num_vertices}-vertex universe"
            )
