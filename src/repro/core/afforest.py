"""The Afforest algorithm (paper Fig. 5).

Pipeline:

1. initialise π self-pointing;
2. ``neighbor_rounds`` rounds of *neighbour sampling*: round ``r`` links
   every vertex to its ``r``-th stored neighbour, followed by a compress —
   O(|V|) work per round, building most of each component;
3. probabilistically identify the largest intermediate component by
   sampling π (:mod:`repro.core.sampling`);
4. *final link phase*: every vertex not already in the giant component
   links its remaining neighbours (``neighbor_rounds``-th onward) — giant-
   component vertices are skipped wholesale, which is safe by Theorem 3
   because their unprocessed edges are either internal (redundant) or
   reachable from the non-skipped endpoint;
5. final compress: π becomes the component labeling.

Two drivers share this structure: :func:`afforest` (vectorized batch
kernels, wall-clock benchmarks) and :func:`afforest_simulated` (generator
kernels on the :class:`~repro.parallel.machine.SimulatedMachine`,
instrumented for traces and work/span accounting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

import numpy as np

from repro.constants import (
    DEFAULT_NEIGHBOR_ROUNDS,
    DEFAULT_SKIP_SAMPLE_SIZE,
    VERTEX_DTYPE,
)
from repro.core.compress import compress_all, compress_kernel
from repro.core.link import link_batch, link_kernel
from repro.core.sampling import approximate_largest_label
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.nputil import segment_ranges
from repro.parallel.machine import KernelContext, SimulatedMachine
from repro.parallel.metrics import RunStats


@dataclass
class AfforestResult:
    """Outcome of an Afforest run.

    ``labels`` is the exact component labeling (root ids).  The counters
    quantify the work-efficiency claims: ``edges_sampled`` were processed in
    neighbour rounds, ``edges_final`` in the final phase, and
    ``edges_skipped`` were never touched thanks to component skipping.
    """

    labels: np.ndarray
    neighbor_rounds: int
    largest_label: int | None
    edges_sampled: int = 0
    edges_final: int = 0
    edges_skipped: int = 0
    link_rounds: list[int] = field(default_factory=list)
    compress_passes: list[int] = field(default_factory=list)
    run_stats: RunStats | None = None
    #: phase label -> wall seconds, populated when profile=True.
    phase_seconds: dict = field(default_factory=dict)

    @property
    def num_components(self) -> int:
        return int(np.unique(self.labels).shape[0])

    @property
    def edges_touched(self) -> int:
        """Directed edge slots examined by link phases."""
        return self.edges_sampled + self.edges_final

    @property
    def skip_fraction(self) -> float:
        """Fraction of final-phase edge slots avoided by skipping."""
        denom = self.edges_final + self.edges_skipped
        return self.edges_skipped / denom if denom else 0.0


def _check_rounds(neighbor_rounds: int) -> None:
    if neighbor_rounds < 0:
        raise ConfigurationError(
            f"neighbor_rounds must be >= 0, got {neighbor_rounds}"
        )


def _round_edges(
    graph: CSRGraph, r: int
) -> tuple[np.ndarray, np.ndarray]:
    """Edge batch of neighbour round ``r``: ``(v, N(v)[r])`` for every
    vertex with degree > r."""
    deg = np.asarray(graph.degree())
    verts = np.nonzero(deg > r)[0].astype(VERTEX_DTYPE)
    nbrs = graph.indices[graph.indptr[verts] + r]
    return verts, nbrs


def _random_round_edges(
    graph: CSRGraph, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """One *random* neighbour per vertex (with replacement across rounds).

    The alternative sampling the paper weighs in Sec. VI-A before choosing
    first-``k``: statistically equivalent coverage, but the sampled slots
    cannot be tracked, so the final phase must reprocess every slot.
    """
    deg = np.asarray(graph.degree())
    verts = np.nonzero(deg > 0)[0].astype(VERTEX_DTYPE)
    offsets = rng.integers(0, deg[verts])
    nbrs = graph.indices[graph.indptr[verts] + offsets]
    return verts, nbrs


def _remaining_edges(
    graph: CSRGraph, verts: np.ndarray, start: int
) -> tuple[np.ndarray, np.ndarray]:
    """All edge slots ``start..deg(v)-1`` of the given vertices, flattened."""
    indptr, indices = graph.indptr, graph.indices
    counts = indptr[verts + 1] - indptr[verts] - start
    counts = np.maximum(counts, 0)
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=VERTEX_DTYPE)
        return empty, empty
    src = np.repeat(verts, counts)
    offsets = np.repeat(indptr[verts] + start, counts) + segment_ranges(counts)
    return src, indices[offsets]


# --------------------------------------------------------------------- #
# vectorized driver
# --------------------------------------------------------------------- #


def afforest(
    graph: CSRGraph,
    *,
    neighbor_rounds: int = DEFAULT_NEIGHBOR_ROUNDS,
    skip_largest: bool = True,
    sample_size: int = DEFAULT_SKIP_SAMPLE_SIZE,
    seed: int = 0,
    sampling: str = "first",
    profile: bool = False,
) -> AfforestResult:
    """Run Afforest (vectorized) and return the exact CC labeling.

    Parameters
    ----------
    graph:
        Symmetric CSR graph.
    neighbor_rounds:
        Neighbour-sampling rounds before the final phase (paper default 2).
    skip_largest:
        Enable large-component skipping (Sec. IV-D).  Disabling reproduces
        the "Afforest (no skip)" configuration of Figs. 7b/8b.
    sample_size:
        π probes used to identify the giant component.
    seed:
        RNG seed for the probabilistic component search (and for the
        ``random`` sampling mode).
    sampling:
        ``first`` (paper default: the first stored neighbours, whose slots
        the final phase can skip) or ``random`` (a random neighbour per
        vertex per round; untrackable, so the final phase reprocesses every
        slot — the trade-off Sec. VI-A cites for choosing ``first``).
    profile:
        Record per-phase wall seconds into ``result.phase_seconds``
        (labels match the simulated driver: L<r>/C<r>/F/H/C*).
    """
    import time as _time
    _check_rounds(neighbor_rounds)
    if sampling not in ("first", "random"):
        raise ConfigurationError(
            f"sampling must be 'first' or 'random', got {sampling!r}"
        )
    n = graph.num_vertices
    pi = np.arange(n, dtype=VERTEX_DTYPE)
    result = AfforestResult(
        labels=pi, neighbor_rounds=neighbor_rounds, largest_label=None
    )
    if n == 0:
        return result

    def timed(label, fn):
        if not profile:
            return fn()
        t0 = _time.perf_counter()
        out = fn()
        result.phase_seconds[label] = (
            result.phase_seconds.get(label, 0.0)
            + _time.perf_counter() - t0
        )
        return out

    rng = np.random.default_rng(seed)
    for r in range(neighbor_rounds):
        if sampling == "first":
            src, dst = _round_edges(graph, r)
        else:
            src, dst = _random_round_edges(graph, rng)
        result.edges_sampled += int(src.shape[0])
        result.link_rounds.append(
            timed(f"L{r}", lambda: link_batch(pi, src, dst))
        )
        result.compress_passes.append(
            timed(f"C{r}", lambda: compress_all(pi))
        )

    # Random sampling cannot mark which slots were consumed, so the final
    # phase starts from slot 0 (reprocessing); first-k sampling resumes at
    # slot neighbor_rounds.
    final_start = neighbor_rounds if sampling == "first" else 0

    if skip_largest:
        c = timed(
            "F",
            lambda: approximate_largest_label(pi, sample_size, rng=rng),
        )
        result.largest_label = c
        verts = np.nonzero(pi != c)[0].astype(VERTEX_DTYPE)
        deg = np.asarray(graph.degree())
        skipped_verts = np.nonzero(pi == c)[0]
        result.edges_skipped = int(
            np.maximum(deg[skipped_verts] - final_start, 0).sum()
        )
    else:
        verts = np.arange(n, dtype=VERTEX_DTYPE)

    src, dst = timed(
        "H-gather", lambda: _remaining_edges(graph, verts, final_start)
    )
    result.edges_final = int(src.shape[0])
    result.link_rounds.append(timed("H", lambda: link_batch(pi, src, dst)))
    result.compress_passes.append(timed("C*", lambda: compress_all(pi)))
    result.labels = pi
    return result


# --------------------------------------------------------------------- #
# simulated-machine driver
# --------------------------------------------------------------------- #


def _init_kernel(
    ctx: KernelContext, v: int, pi: np.ndarray
) -> Generator[None, None, None]:
    """Initialisation phase: ``pi[v] <- v`` (one shared write per vertex)."""
    yield from ctx.write(pi, v, v)


def _neighbor_link_kernel(
    ctx: KernelContext,
    v: int,
    pi: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    r: int,
) -> Generator[None, None, None]:
    """Neighbour-round kernel: link ``(v, N(v)[r])`` when degree permits.

    Graph-structure reads are not preemption points — only π is shared
    mutable state; the CSR arrays are immutable.
    """
    lo = int(indptr[v])
    if lo + r >= int(indptr[v + 1]):
        return
    w = int(indices[lo + r])
    yield from _link_pair(ctx, pi, v, w)


def _link_pair(
    ctx: KernelContext, pi: np.ndarray, u: int, v: int
) -> Generator[None, None, None]:
    """Shared concurrent-link body (same loop as link_kernel)."""
    fake_src = (u,)
    fake_dst = (v,)
    yield from link_kernel(ctx, 0, pi, fake_src, fake_dst)


def _probe_kernel(
    ctx: KernelContext,
    i: int,
    pi: np.ndarray,
    probes: np.ndarray,
    out: np.ndarray,
) -> Generator[None, None, None]:
    """Component-search phase: read π at one random probe position."""
    out[i] = yield from ctx.read(pi, int(probes[i]))


def _final_link_kernel(
    ctx: KernelContext,
    v: int,
    pi: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    start: int,
    largest: int | None,
    counters: dict,
) -> Generator[None, None, None]:
    """Final phase kernel: skip check then link remaining neighbours."""
    if largest is not None:
        label = yield from ctx.read(pi, v)
        if label == largest:
            counters["skipped"] += max(
                int(indptr[v + 1]) - int(indptr[v]) - start, 0
            )
            return
    lo = int(indptr[v]) + start
    hi = int(indptr[v + 1])
    for e in range(lo, hi):
        counters["final"] += 1
        yield from _link_pair(ctx, pi, v, int(indices[e]))


def afforest_simulated(
    graph: CSRGraph,
    machine: SimulatedMachine,
    *,
    neighbor_rounds: int = DEFAULT_NEIGHBOR_ROUNDS,
    skip_largest: bool = True,
    sample_size: int = DEFAULT_SKIP_SAMPLE_SIZE,
    seed: int = 0,
) -> AfforestResult:
    """Run Afforest on the simulated parallel machine.

    Semantically identical to :func:`afforest` but executed concurrently by
    the machine's workers with per-operation interleaving, producing
    work/span statistics (``machine.stats``) and, when the machine carries a
    :class:`~repro.parallel.memtrace.MemoryTrace`, the Fig. 7 access trace.

    Phase labels follow Fig. 7's legend: ``I`` init, ``L<r>`` link rounds,
    ``C`` compress, ``F`` find-largest, ``H`` final link ("hook"), ``C*``
    final compress.
    """
    _check_rounds(neighbor_rounds)
    n = graph.num_vertices
    pi = np.empty(n, dtype=VERTEX_DTYPE)
    indptr, indices = graph.indptr, graph.indices
    result = AfforestResult(
        labels=pi, neighbor_rounds=neighbor_rounds, largest_label=None
    )
    if n == 0:
        result.run_stats = machine.stats
        return result

    machine.parallel_for(n, _init_kernel, pi, phase="I")

    for r in range(neighbor_rounds):
        result.edges_sampled += int(
            np.count_nonzero(np.asarray(graph.degree()) > r)
        )
        machine.parallel_for(
            n, _neighbor_link_kernel, pi, indptr, indices, r, phase=f"L{r}"
        )
        machine.parallel_for(n, compress_kernel, pi, phase=f"C{r}")

    rng = np.random.default_rng(seed)
    largest: int | None = None
    if skip_largest:
        probes = rng.integers(0, n, size=min(sample_size, max(n, 1)))
        out = np.empty(probes.shape[0], dtype=VERTEX_DTYPE)
        machine.parallel_for(
            probes.shape[0], _probe_kernel, pi, probes, out, phase="F"
        )
        uniq, counts = np.unique(out, return_counts=True)
        largest = int(uniq[np.argmax(counts)])
        result.largest_label = largest

    counters = {"skipped": 0, "final": 0}
    machine.parallel_for(
        n,
        _final_link_kernel,
        pi,
        indptr,
        indices,
        neighbor_rounds,
        largest,
        counters,
        phase="H",
    )
    result.edges_final = counters["final"]
    result.edges_skipped = counters["skipped"]
    machine.parallel_for(n, compress_kernel, pi, phase="C*")
    result.labels = pi
    result.run_stats = machine.stats
    return result
