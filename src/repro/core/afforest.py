"""The Afforest algorithm (paper Fig. 5) — engine entry points.

Pipeline:

1. initialise π self-pointing;
2. ``neighbor_rounds`` rounds of *neighbour sampling*: round ``r`` links
   every vertex to its ``r``-th stored neighbour, followed by a compress —
   O(|V|) work per round, building most of each component;
3. probabilistically identify the largest intermediate component by
   sampling π (:mod:`repro.core.sampling`);
4. *final link phase*: every vertex not already in the giant component
   links its remaining neighbours (``neighbor_rounds``-th onward) — giant-
   component vertices are skipped wholesale, which is safe by Theorem 3
   because their unprocessed edges are either internal (redundant) or
   reachable from the non-skipped endpoint;
5. final compress: π becomes the component labeling.

The pipeline itself is implemented exactly once, in
:func:`repro.engine.pipelines.afforest_pipeline`, against the
:class:`~repro.engine.backends.ExecutionBackend` primitives;
:func:`afforest` here is the stable vectorized entry point (wall-clock
benchmarks).  For other substrates call the engine directly, e.g.
``engine.run("afforest", graph, backend=SimulatedBackend(machine))``.
"""

from __future__ import annotations

from repro.constants import (
    DEFAULT_NEIGHBOR_ROUNDS,
    DEFAULT_SKIP_SAMPLE_SIZE,
)

# Only the leaf result module is imported eagerly: this module is pulled in
# by ``repro.core.__init__``, which the engine's backends import for the
# compress/link kernels — importing ``repro.engine`` itself here would
# close that cycle, so the engine entry points are resolved at call time.
from repro.engine.result import CCResult
from repro.graph.csr import CSRGraph

#: Back-compat alias — Afforest runs return the unified engine record.
AfforestResult = CCResult


def afforest(
    graph: CSRGraph,
    *,
    neighbor_rounds: int = DEFAULT_NEIGHBOR_ROUNDS,
    skip_largest: bool = True,
    sample_size: int = DEFAULT_SKIP_SAMPLE_SIZE,
    seed: int = 0,
    sampling: str = "first",
    profile: bool = False,
) -> CCResult:
    """Run Afforest (vectorized) and return the exact CC labeling.

    Parameters
    ----------
    graph:
        Symmetric CSR graph.
    neighbor_rounds:
        Neighbour-sampling rounds before the final phase (paper default 2).
    skip_largest:
        Enable large-component skipping (Sec. IV-D).  Disabling reproduces
        the "Afforest (no skip)" configuration of Figs. 7b/8b.
    sample_size:
        π probes used to identify the giant component.
    seed:
        RNG seed for the probabilistic component search (and for the
        ``random`` sampling mode).
    sampling:
        ``first`` (paper default: the first stored neighbours, whose slots
        the final phase can skip) or ``random`` (a random neighbour per
        vertex per round; untrackable, so the final phase reprocesses every
        slot — the trade-off Sec. VI-A cites for choosing ``first``).
    profile:
        Record per-phase wall seconds into ``result.phase_seconds``
        (labels match the simulated driver: L<r>/C<r>/F/H/C*).
    """
    from repro import engine

    return engine.run(
        "afforest",
        graph,
        profile=profile,
        neighbor_rounds=neighbor_rounds,
        skip_largest=skip_largest,
        sample_size=sample_size,
        seed=seed,
        sampling=sampling,
    )
