"""Afforest: the paper's core contribution.

Public entry points:

- :func:`~repro.core.afforest.afforest` — the full Fig. 5 algorithm
  (neighbour-round sampling + large-component skipping), vectorized
  (other substrates via ``engine.run("afforest", g, backend=...)``);
- :func:`~repro.core.link.link` / :func:`~repro.core.compress.compress` —
  the two primitives, scalar form;
- :mod:`~repro.core.strategies` — the subgraph partitioning strategies of
  Sec. V-B (row / uniform-edge / neighbour / spanning-forest-optimal).
"""

from repro.core.afforest import (
    AfforestResult,
    afforest,
)
from repro.core.compress import compress, compress_all, compress_kernel
from repro.core.incremental import IncrementalConnectivity
from repro.core.link import LinkCounters, link, link_batch, link_kernel
from repro.core.sampling import approximate_largest_label, most_frequent_element
from repro.core.spanning_forest import spanning_forest, spanning_forest_batch

__all__ = [
    "AfforestResult",
    "afforest",
    "compress",
    "compress_all",
    "compress_kernel",
    "IncrementalConnectivity",
    "LinkCounters",
    "link",
    "link_batch",
    "link_kernel",
    "approximate_largest_label",
    "most_frequent_element",
    "spanning_forest",
    "spanning_forest_batch",
]
