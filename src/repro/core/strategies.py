"""Subgraph partitioning strategies (paper Sec. IV / V-B, Fig. 6).

Afforest's subgraph-processing property (Sec. III-B) lets the edge set be
split into arbitrary batches, each processed by ``link`` with ``compress``
in between.  *Which* batches come first determines how fast linkage and
coverage converge; the paper compares four strategies, all implemented
here with a common interface:

    strategy(graph, ...) -> list[SubgraphBatch]

where each batch carries parallel ``(src, dst)`` arrays of directed edges.
Processing all batches in order touches every directed edge slot exactly
once for every strategy, so convergence-vs-%-edges curves are directly
comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.errors import ConfigurationError
from repro.generators.rng import make_rng
from repro.graph.csr import CSRGraph
from repro.core.spanning_forest import spanning_forest
from repro.nputil import segment_ranges

__all__ = [
    "SubgraphBatch",
    "row_sampling",
    "uniform_edge_sampling",
    "neighbor_sampling",
    "optimal_sampling",
    "STRATEGIES",
]


@dataclass(frozen=True)
class SubgraphBatch:
    """One edge batch of a partitioning strategy."""

    name: str
    src: np.ndarray
    dst: np.ndarray

    @property
    def num_edges(self) -> int:
        return int(self.src.shape[0])


def _check_batches(num_batches: int) -> None:
    if num_batches < 1:
        raise ConfigurationError(f"num_batches must be >= 1, got {num_batches}")


def row_sampling(graph: CSRGraph, num_batches: int = 10) -> list[SubgraphBatch]:
    """Partition the adjacency matrix by contiguous row blocks.

    The strategy the paper finds slowest to converge: early batches only
    see edges local to a vertex-id range, so cross-range merges wait for
    later batches.
    """
    _check_batches(num_batches)
    n = graph.num_vertices
    src_all = graph.sources()
    dst_all = graph.indices
    bounds = np.linspace(0, n, num_batches + 1).astype(np.int64)
    batches = []
    indptr = graph.indptr
    for b in range(num_batches):
        lo, hi = int(indptr[bounds[b]]), int(indptr[bounds[b + 1]])
        batches.append(
            SubgraphBatch(f"rows[{bounds[b]}:{bounds[b+1]})",
                          src_all[lo:hi], dst_all[lo:hi])
        )
    return batches


def uniform_edge_sampling(
    graph: CSRGraph,
    num_batches: int = 10,
    *,
    seed: int | np.random.Generator | None = 0,
) -> list[SubgraphBatch]:
    """Random disjoint edge subsets of equal size.

    Equivalent to sampling each edge with increasing probability ``p``
    (Sec. IV-B): after batch ``k`` the processed subgraph is a uniform
    ``k / num_batches`` sample of the directed edges.
    """
    _check_batches(num_batches)
    rng = make_rng(seed)
    src_all = graph.sources()
    dst_all = graph.indices
    m = src_all.shape[0]
    order = rng.permutation(m)
    bounds = np.linspace(0, m, num_batches + 1).astype(np.int64)
    return [
        SubgraphBatch(
            f"uniform p={(b + 1) / num_batches:.2f}",
            src_all[order[bounds[b] : bounds[b + 1]]],
            dst_all[order[bounds[b] : bounds[b + 1]]],
        )
        for b in range(num_batches)
    ]


def neighbor_sampling(
    graph: CSRGraph,
    rounds: int = 2,
) -> list[SubgraphBatch]:
    """The paper's strategy (Sec. IV-C): round ``r`` takes each vertex's
    ``r``-th stored neighbour; a final batch holds all remaining slots.

    Edge budget is thereby spread evenly across vertices and components —
    a degree-one vertex's only edge is always in round 0.
    """
    if rounds < 0:
        raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
    indptr, indices = graph.indptr, graph.indices
    deg = np.asarray(graph.degree())
    n = graph.num_vertices
    verts = np.arange(n, dtype=VERTEX_DTYPE)
    batches = []
    for r in range(rounds):
        sel = verts[deg > r]
        batches.append(
            SubgraphBatch(
                f"neighbor round {r}", sel, indices[indptr[sel] + r]
            )
        )
    rest_counts = np.maximum(deg - rounds, 0)
    total = int(rest_counts.sum())
    if total:
        src = np.repeat(verts, rest_counts)
        offsets = (
            np.repeat(indptr[:-1] + rounds, rest_counts)
            + segment_ranges(rest_counts)
        )
        batches.append(SubgraphBatch("remainder", src, indices[offsets]))
    else:
        empty = np.empty(0, dtype=VERTEX_DTYPE)
        batches.append(SubgraphBatch("remainder", empty, empty))
    return batches


def optimal_sampling(graph: CSRGraph) -> list[SubgraphBatch]:
    """The optimal-subgraph reference: a spanning forest first, then the
    remaining edges.

    After the first batch every component is fully linked (an SF preserves
    connectivity), so linkage and coverage hit 1.0 at
    ``(|V| - C) / |E|`` of the edges processed — the theoretical best any
    strategy can do.
    """
    sf = spanning_forest(graph)
    key_n = max(graph.num_vertices, 1)
    sf_keys = np.minimum(sf.src, sf.dst) * np.int64(key_n) + np.maximum(
        sf.src, sf.dst
    )

    src_all = graph.sources()
    dst_all = graph.indices
    keys = np.minimum(src_all, dst_all) * np.int64(key_n) + np.maximum(
        src_all, dst_all
    )
    in_sf = np.isin(keys, sf_keys)
    return [
        SubgraphBatch("spanning forest", src_all[in_sf], dst_all[in_sf]),
        SubgraphBatch("remainder", src_all[~in_sf], dst_all[~in_sf]),
    ]


#: name -> callable(graph) using the Fig. 6 defaults.
STRATEGIES = {
    "row": row_sampling,
    "uniform": uniform_edge_sampling,
    "neighbor": neighbor_sampling,
    "optimal": optimal_sampling,
}
