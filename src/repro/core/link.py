"""The ``link`` primitive (paper Fig. 3).

Given an edge ``(u, v)`` and the parent array π, ``link`` guarantees on
return that ``u`` and ``v`` lie in the same component tree, merging trees
if needed.  The loop walks both endpoints' ancestor chains; at each step it
tries to hook the higher-indexed candidate root onto the lower one with a
compare-and-swap, preserving Invariant 1 (``pi[x] <= x``).

Three implementations share these semantics:

- :func:`link` — plain scalar with optional counters (analysis runs);
- :func:`link_kernel` — generator kernel for the simulated machine, with a
  preemption point before every shared access (concurrent semantics);
- :func:`link_batch` — NumPy-vectorized over an edge batch, used by the
  performance implementation.  Conflicting concurrent hooks are resolved by
  ``np.minimum.at`` scatter-min, the batch analogue of "the winning CAS is
  the one writing the smallest l", and losers re-iterate exactly like the
  scalar CAS-failure path (case 3 of Lemma 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

import numpy as np

from repro.constants import ITERATION_CAP_FACTOR, ITERATION_CAP_SLACK
from repro.errors import ConvergenceError
from repro.parallel.machine import KernelContext


@dataclass
class LinkCounters:
    """Instrumentation for scalar link runs (Table II / Sec. V-A).

    ``iterations_histogram[k]`` counts edges whose link loop ran ``k`` local
    iterations; ``max_chain`` is the longest ancestor chain walked.
    """

    edges_processed: int = 0
    total_iterations: int = 0
    max_iterations: int = 0
    max_chain: int = 0
    hooks: int = 0
    cas_failures: int = 0
    iterations_histogram: dict[int, int] = field(default_factory=dict)

    @property
    def mean_iterations(self) -> float:
        """Average local link iterations per processed edge."""
        if self.edges_processed == 0:
            return 0.0
        return self.total_iterations / self.edges_processed

    def _record_edge(self, iters: int) -> None:
        self.edges_processed += 1
        self.total_iterations += iters
        if iters > self.max_iterations:
            self.max_iterations = iters
        self.iterations_histogram[iters] = (
            self.iterations_histogram.get(iters, 0) + 1
        )


def link(
    pi: np.ndarray,
    u: int,
    v: int,
    counters: LinkCounters | None = None,
) -> bool:
    """Scalar link: ensure ``u`` and ``v`` share a component tree in π.

    Returns True if a hook was performed (the trees were distinct).
    Single-threaded, so the CAS always succeeds when the candidate is a
    root; the loop structure is still the concurrent one.
    """
    p1 = int(pi[u])
    p2 = int(pi[v])
    iters = 0
    hooked = False
    cap = ITERATION_CAP_FACTOR * pi.shape[0] + ITERATION_CAP_SLACK
    while p1 != p2:
        iters += 1
        if iters > cap:
            raise ConvergenceError(
                f"link({u}, {v}) exceeded {cap} iterations — corrupted pi?"
            )
        if p1 < p2:
            low, high = p1, p2
        else:
            low, high = p2, p1
        p_high = int(pi[high])
        if p_high == low:
            break  # already hooked by this or another edge
        if p_high == high:
            # high is a root: hook it under low (sequential CAS succeeds).
            pi[high] = low
            hooked = True
            if counters is not None:
                counters.hooks += 1
            break
        # high was not a root — climb both chains and retry.
        p1 = int(pi[p_high])
        p2 = int(pi[low])
        if counters is not None and iters > counters.max_chain:
            counters.max_chain = iters
    if counters is not None:
        counters._record_edge(max(iters, 1))
    return hooked


def link_kernel(
    ctx: KernelContext,
    edge: int,
    pi: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
) -> Generator[None, None, None]:
    """Machine kernel: link edge ``(src[edge], dst[edge])`` concurrently.

    Faithful to the paper's concurrent formulation: each shared access is a
    separate preemption point, and hooks go through a real CAS that fails
    when another worker got there first.
    """
    u = int(src[edge])
    v = int(dst[edge])
    p1 = yield from ctx.read(pi, u)
    p2 = yield from ctx.read(pi, v)
    cap = ITERATION_CAP_FACTOR * pi.shape[0] + ITERATION_CAP_SLACK
    iters = 0
    while p1 != p2:
        iters += 1
        if iters > cap:
            raise ConvergenceError(
                f"link_kernel({u}, {v}) exceeded {cap} iterations"
            )
        if p1 < p2:
            low, high = p1, p2
        else:
            low, high = p2, p1
        p_high = yield from ctx.read(pi, high)
        if p_high == low:
            break
        if p_high == high:
            ok = yield from ctx.cas(pi, high, high, low)
            if ok:
                break
        p1 = yield from ctx.read(pi, high)
        p1 = yield from ctx.read(pi, p1)
        p2 = yield from ctx.read(pi, low)


def link_batch(
    pi: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
) -> int:
    """Vectorized link of a whole edge batch.

    Iterates SV-style rounds *restricted to the batch* until every edge's
    endpoints share a root.  Each round:

    1. gathers candidate parents ``a = pi[..u..], b = pi[..v..]``;
    2. hooks roots: where ``pi[h] == h``, scatter-min writes the smallest
       competing ``l`` into ``pi[h]`` (CAS-winner semantics);
    3. climbs: edges that did not finish advance to
       ``(pi[pi[h]], pi[l])`` and go again.

    Returns the number of rounds executed.  O(rounds · batch) vectorized
    work; rounds is O(log n) in practice and capped for safety.
    """
    if src.shape[0] == 0:
        return 0
    a = pi[src]
    b = pi[dst]
    n = pi.shape[0]
    cap = ITERATION_CAP_FACTOR * n + ITERATION_CAP_SLACK
    rounds = 0
    while True:
        active = a != b
        if not active.any():
            return rounds
        rounds += 1
        if rounds > cap:
            raise ConvergenceError(
                f"link_batch exceeded {cap} rounds — corrupted pi?"
            )
        a = a[active]
        b = b[active]
        h = np.maximum(a, b)
        l = np.minimum(a, b)
        ph = pi[h]
        root = ph == h
        if root.any():
            np.minimum.at(pi, h[root], l[root])
        # Climb both chains (also resolves freshly hooked edges: their new
        # a and b meet at the common root and drop out next round).
        a = pi[pi[h]]
        b = pi[l]
