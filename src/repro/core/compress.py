"""The ``compress`` primitive (paper Fig. 2b).

``compress(v, pi)`` repeatedly replaces ``pi[v]`` with ``pi[pi[v]]`` until
``v`` points directly at its root, reducing every tree to depth one when
applied over all vertices (Theorem 2).  Safe under concurrency: each worker
writes only its own ``pi[v]``; reads of other entries can observe a
shortened-but-valid path.

Forms:

- :func:`compress` — scalar;
- :func:`compress_kernel` — generator kernel for the simulated machine;
- :func:`compress_all` — vectorized full-array compression via pointer
  doubling (the batch analogue: ``pi <- pi[pi]`` until fixpoint).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.constants import ITERATION_CAP_FACTOR, ITERATION_CAP_SLACK
from repro.errors import ConvergenceError
from repro.parallel.machine import KernelContext


def compress(pi: np.ndarray, v: int) -> int:
    """Scalar compress: point ``v`` directly at its root.

    Returns the number of shortcut steps performed (0 when ``v`` already
    points at a root) — the per-vertex tree depth beyond one.
    """
    steps = 0
    cap = ITERATION_CAP_FACTOR * pi.shape[0] + ITERATION_CAP_SLACK
    while pi[pi[v]] != pi[v]:
        pi[v] = pi[pi[v]]
        steps += 1
        if steps > cap:
            raise ConvergenceError(
                f"compress({v}) exceeded {cap} steps — cycle in pi?"
            )
    return steps


def compress_kernel(
    ctx: KernelContext,
    v: int,
    pi: np.ndarray,
) -> Generator[None, None, None]:
    """Machine kernel: concurrent compress of vertex ``v``.

    Matches the paper's loop exactly: the exit condition re-reads
    ``pi[pi[v]]`` each iteration, so concurrent shortening by other workers
    (which only ever shortens paths, per Theorem 2) is handled naturally.
    """
    cap = ITERATION_CAP_FACTOR * pi.shape[0] + ITERATION_CAP_SLACK
    steps = 0
    parent = yield from ctx.read(pi, v)
    grand = yield from ctx.read(pi, parent)
    while grand != parent:
        steps += 1
        if steps > cap:
            raise ConvergenceError(
                f"compress_kernel({v}) exceeded {cap} steps"
            )
        yield from ctx.write(pi, v, grand)
        parent = grand
        grand = yield from ctx.read(pi, parent)


def compress_all(pi: np.ndarray) -> int:
    """Vectorized compression of the entire parent array.

    Pointer doubling: each pass performs ``pi <- pi[pi]`` (one gather, one
    assign), halving all depths; ``O(log depth)`` passes total.  Returns the
    number of passes.
    """
    passes = 0
    cap = ITERATION_CAP_FACTOR * pi.shape[0] + ITERATION_CAP_SLACK
    while True:
        nxt = pi[pi]
        if np.array_equal(nxt, pi):
            return passes
        pi[:] = nxt
        passes += 1
        if passes > cap:
            raise ConvergenceError(
                f"compress_all exceeded {cap} passes — cycle in pi?"
            )
