"""Spanning forests (paper Sec. IV-A).

A spanning forest (SF) preserves connectivity with only ``|V| - C`` edges,
which is why processing an SF first is the *optimal* subgraph strategy the
paper benchmarks neighbour sampling against (Fig. 6's "optimal" series).

Extraction exploits the duality the paper notes: running a tree-hooking CC
algorithm and keeping exactly the edges that caused a merge yields an SF.
"""

from __future__ import annotations

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.graph.coo import EdgeList
from repro.graph.csr import CSRGraph
from repro.unionfind.sequential import SequentialUnionFind


def spanning_forest(graph: CSRGraph) -> EdgeList:
    """Edges of a spanning forest of ``graph`` (each undirected edge once).

    The result has exactly ``|V| - C`` edges (Sec. IV-A).  Which spanning
    forest is returned depends on edge iteration order; any SF is equally
    "optimal" for the convergence experiments.
    """
    uf = SequentialUnionFind(graph.num_vertices)
    src, dst = graph.undirected_edge_array()
    keep_src: list[int] = []
    keep_dst: list[int] = []
    for u, v in zip(src.tolist(), dst.tolist()):
        if u != v and uf.union(u, v):
            keep_src.append(u)
            keep_dst.append(v)
    return EdgeList(
        graph.num_vertices,
        np.asarray(keep_src, dtype=VERTEX_DTYPE),
        np.asarray(keep_dst, dtype=VERTEX_DTYPE),
    )


def spanning_forest_batch(graph: CSRGraph) -> EdgeList:
    """Spanning forest extracted by the *tracked* batch link.

    Runs the same vectorized rounds as
    :func:`~repro.core.link.link_batch` over every undirected edge, but
    attributes each successful hook to the edge that performed it.  An
    edge is credited at most once (it leaves the loop after its hook), and
    every tree merge is credited to exactly one edge, so the credited set
    is a spanning forest of size ``|V| - C`` — the parallel realisation of
    the duality in Sec. IV-A.
    """
    import numpy as np

    src, dst = graph.undirected_edge_array()
    n = graph.num_vertices
    pi = np.arange(n, dtype=VERTEX_DTYPE)
    m = src.shape[0]
    credited = np.zeros(m, dtype=bool)
    if m == 0:
        return EdgeList(n, src, dst)

    edge_ids = np.arange(m, dtype=VERTEX_DTYPE)
    a = pi[src]
    b = pi[dst]
    while True:
        active = a != b
        if not active.any():
            break
        a = a[active]
        b = b[active]
        edge_ids = edge_ids[active]
        h = np.maximum(a, b)
        l = np.minimum(a, b)
        root = pi[h] == h
        if root.any():
            cand_h = h[root]
            cand_l = l[root]
            cand_e = edge_ids[root]
            # Group competing hooks by target root; the smallest l wins
            # (scatter-min semantics), and the first edge carrying that
            # (h, l) pair gets the merge credit.
            order = np.lexsort((cand_l, cand_h))
            gh = cand_h[order]
            gl = cand_l[order]
            ge = cand_e[order]
            first = np.ones(gh.shape[0], dtype=bool)
            first[1:] = gh[1:] != gh[:-1]
            np.minimum.at(pi, gh[first], gl[first])
            credited[ge[first]] = True
        a = pi[pi[h]]
        b = pi[l]
    return EdgeList(n, src[credited], dst[credited])


def spanning_forest_size(graph: CSRGraph) -> int:
    """``|V| - C`` without materialising the forest."""
    uf = SequentialUnionFind(graph.num_vertices)
    src, dst = graph.undirected_edge_array()
    for u, v in zip(src.tolist(), dst.tolist()):
        uf.union(u, v)
    return graph.num_vertices - uf.num_sets
