"""Probabilistic identification of the largest intermediate component.

Paper Sec. IV-E: after the neighbour rounds (and their compress), the
algorithm "performs a probabilistic search for determining the largest
identified component ... by randomly sampling π a constant number of times
and finding the most referenced value."  Because all trees are depth-1 at
that point, sampling π directly samples component labels proportionally to
component size, so the giant component's label is the sample mode with
overwhelming probability.
"""

from __future__ import annotations

import numpy as np

from repro.constants import DEFAULT_SKIP_SAMPLE_SIZE
from repro.errors import ConfigurationError


def most_frequent_element(
    values: np.ndarray,
    sample_size: int = DEFAULT_SKIP_SAMPLE_SIZE,
    *,
    rng: np.random.Generator | None = None,
) -> int:
    """Mode of ``sample_size`` uniform random probes into ``values``.

    With a giant component covering fraction ``q`` of the vertices, the
    probability that its label is not the sample mode decays exponentially
    in ``sample_size`` (Chernoff); 1024 probes make misidentification
    vanishingly rare for ``q >= 0.3`` — and a *wrong* answer only costs
    performance, never correctness (skipping any single tree is safe by
    Theorem 3).
    """
    if values.shape[0] == 0:
        raise ConfigurationError("cannot sample an empty array")
    if sample_size < 1:
        raise ConfigurationError(f"sample_size must be >= 1, got {sample_size}")
    if rng is None:
        rng = np.random.default_rng(0)
    idx = rng.integers(0, values.shape[0], size=sample_size)
    sample = values[idx]
    uniq, counts = np.unique(sample, return_counts=True)
    return int(uniq[np.argmax(counts)])


def approximate_largest_label(
    pi: np.ndarray,
    sample_size: int = DEFAULT_SKIP_SAMPLE_SIZE,
    *,
    rng: np.random.Generator | None = None,
) -> int:
    """The giant component's (probable) label in a compressed parent array.

    Thin wrapper over :func:`most_frequent_element` with the π-specific
    contract: callers must have run ``compress`` first so entries are root
    labels (depth-1 trees) — otherwise probes return interior vertices and
    the mode underestimates the giant component.
    """
    return most_frequent_element(pi, sample_size, rng=rng)


def exact_largest_label(pi: np.ndarray) -> int:
    """Exact giant-component label (full scan; analysis/testing reference)."""
    if pi.shape[0] == 0:
        raise ConfigurationError("cannot scan an empty array")
    counts = np.bincount(pi)
    return int(np.argmax(counts))
