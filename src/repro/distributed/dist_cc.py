"""Distributed connected components — deprecated shim.

The original module implemented a standalone forest-reduction algorithm
(rank-local Afforest, binary-tree merge, broadcast).  That algorithm has
been superseded by the engine's first-class distributed substrate:
:class:`repro.engine.backends.DistributedBackend` runs every composed
sampling × finish plan as BSP supersteps that exchange only changed-label
deltas — strictly less traffic than shipping whole parent arrays up a
reduction tree (see ``docs/distributed.md``).

:func:`distributed_components` survives as a thin deprecated shim over
``engine.run(backend=DistributedBackend(...))`` so existing callers keep
working; prefer the engine call in new code::

    from repro import engine
    from repro.engine.backends import DistributedBackend

    result = engine.run(g, plan="none+fastsv",
                        backend=DistributedBackend(ranks=4))

:func:`merge_forest` — the subgraph-property merge at the heart of the old
reduction (a parent array *is* a connectivity-preserving subgraph of the
edges that built it) — is kept as a documented standalone primitive.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.core.compress import compress_all
from repro.core.link import link_batch
from repro.distributed.comm import CommStats, SimulatedComm
from repro.distributed.partition import (
    partition_edges_block,
    partition_edges_hash,
)
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph


@dataclass
class DistCCResult:
    """Outcome of a distributed CC run.

    ``merge_rounds`` historically counted binary-tree reduction rounds;
    under the delta-exchange substrate it reports the number of
    communicator supersteps the solve used (0 on a single rank).
    """

    labels: np.ndarray
    num_ranks: int
    comm_stats: CommStats
    local_edges_per_rank: list[int]
    merge_rounds: int

    @property
    def num_components(self) -> int:
        return int(np.unique(self.labels).shape[0])

    @property
    def bytes_per_vertex(self) -> float:
        """Total traffic normalised by |V|."""
        n = self.labels.shape[0]
        return self.comm_stats.bytes_sent / n if n else 0.0


def merge_forest(pi: np.ndarray, incoming: np.ndarray) -> None:
    """Merge another rank's parent forest into ``pi`` in place.

    The incoming array is interpreted as the edge set
    ``{(v, incoming[v]) : v}`` — a connectivity-preserving subgraph of the
    edges the sender processed — and linked like any other subgraph.
    """
    if incoming.shape != pi.shape:
        raise ConfigurationError("forest arrays must have equal length")
    verts = np.arange(pi.shape[0], dtype=VERTEX_DTYPE)
    link_batch(pi, verts, incoming.astype(VERTEX_DTYPE))
    compress_all(pi)


def distributed_components(
    graph: CSRGraph,
    num_ranks: int = 4,
    *,
    partitioner=partition_edges_hash,
    comm: SimulatedComm | None = None,
) -> DistCCResult:
    """Exact CC labels computed across ``num_ranks`` simulated ranks.

    .. deprecated:: 1.3
        Thin shim over
        ``engine.run(backend=DistributedBackend(ranks=num_ranks))``;
        prefer the engine call in new code — it exposes the full plan
        space, telemetry, and the run ledger.

    Parameters
    ----------
    graph:
        The input graph (vertex set replicated; edges partitioned).
    num_ranks:
        World size ``R``.
    partitioner:
        ``partition_edges_block`` selects contiguous block sharding,
        anything else (the default hash partitioner) hashed sharding;
        also used to report the legacy per-rank undirected edge counts.
    comm:
        Optionally supply a communicator (e.g. to share accounting across
        several runs); a fresh one is created otherwise.
    """
    warnings.warn(
        "distributed_components() is deprecated; use "
        "engine.run(backend=DistributedBackend(ranks=...)) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    # Imported lazily: the engine imports this package for the backend's
    # comm/partition helpers, so a module-level import would be circular.
    from repro import engine
    from repro.engine.backends import DistributedBackend

    mode = "block" if partitioner is partition_edges_block else "hash"
    backend = DistributedBackend(ranks=num_ranks, partition=mode, comm=comm)
    parts = partitioner(graph, num_ranks)
    if len(parts) != num_ranks:
        raise ConfigurationError(
            f"partitioner returned {len(parts)} shards for {num_ranks} ranks"
        )
    local_edges = [int(src.shape[0]) for src, _ in parts]
    steps_before = backend.comm.stats.supersteps
    result = engine.run(graph, plan="none+fastsv", backend=backend)
    return DistCCResult(
        labels=result.labels,
        num_ranks=num_ranks,
        comm_stats=backend.comm.stats,
        local_edges_per_rank=local_edges,
        merge_rounds=backend.comm.stats.supersteps - steps_before,
    )
