"""Distributed connected components via forest reduction.

The algorithm (each rank ``r`` of ``R``, on the simulated communicator):

1. **local phase** — run the Afforest core over the rank's edge partition:
   ``link_batch`` every local edge into a private parent array ``pi_r``,
   then ``compress_all``.  No communication.
2. **reduction phase** — ``ceil(log2 R)`` supersteps.  In step ``k``, rank
   ``r + 2**k`` sends its (compressed) parent array to rank ``r`` (for
   ``r`` multiple of ``2**(k+1)``); the receiver *merges* the incoming
   forest by treating it as one more edge subgraph — ``link_batch(pi_r,
   v, incoming[v])`` for all ``v`` — exactly the subgraph-processing
   property of Sec. III-B.  A compress follows each merge.
3. **broadcast** — rank 0 holds the exact global labeling and broadcasts.

Communication: each rank array is ``8n`` bytes, so total traffic is
``8n(R - 1)`` bytes up the tree plus the broadcast — O(|V| log R) time on
a tree network, independent of |E|.  The merge is correct because a
parent array *is* a connectivity-preserving subgraph of its inputs
(every tree edge ``(v, pi[v])`` was created by links over real edges),
so merging forests merges exactly the connectivity information.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.core.compress import compress_all
from repro.core.link import link_batch
from repro.distributed.comm import CommStats, SimulatedComm
from repro.distributed.partition import partition_edges_hash
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph


@dataclass
class DistCCResult:
    """Outcome of a distributed CC run."""

    labels: np.ndarray
    num_ranks: int
    comm_stats: CommStats
    local_edges_per_rank: list[int]
    merge_rounds: int

    @property
    def num_components(self) -> int:
        return int(np.unique(self.labels).shape[0])

    @property
    def bytes_per_vertex(self) -> float:
        """Total traffic normalised by |V| — the O(log R) constant."""
        n = self.labels.shape[0]
        return self.comm_stats.bytes_sent / n if n else 0.0


def merge_forest(pi: np.ndarray, incoming: np.ndarray) -> None:
    """Merge another rank's parent forest into ``pi`` in place.

    The incoming array is interpreted as the edge set
    ``{(v, incoming[v]) : v}`` — a connectivity-preserving subgraph of the
    edges the sender processed — and linked like any other subgraph.
    """
    if incoming.shape != pi.shape:
        raise ConfigurationError("forest arrays must have equal length")
    verts = np.arange(pi.shape[0], dtype=VERTEX_DTYPE)
    link_batch(pi, verts, incoming.astype(VERTEX_DTYPE))
    compress_all(pi)


def distributed_components(
    graph: CSRGraph,
    num_ranks: int = 4,
    *,
    partitioner=partition_edges_hash,
    comm: SimulatedComm | None = None,
) -> DistCCResult:
    """Exact CC labels computed across ``num_ranks`` simulated ranks.

    Parameters
    ----------
    graph:
        The input graph (vertex set replicated; edges partitioned).
    num_ranks:
        World size ``R``.
    partitioner:
        ``f(graph, num_ranks) -> [(src, dst), ...]`` edge partitioner.
    comm:
        Optionally supply a communicator (e.g. to share accounting across
        several runs); a fresh one is created otherwise.
    """
    if comm is None:
        comm = SimulatedComm(num_ranks)
    elif comm.num_ranks != num_ranks:
        raise ConfigurationError(
            f"communicator has {comm.num_ranks} ranks, expected {num_ranks}"
        )
    n = graph.num_vertices
    parts = partitioner(graph, num_ranks)
    if len(parts) != num_ranks:
        raise ConfigurationError(
            f"partitioner returned {len(parts)} parts for {num_ranks} ranks"
        )

    # Phase 1: rank-local Afforest core.
    forests: list[np.ndarray | None] = []
    local_edges = []
    for src, dst in parts:
        pi = np.arange(n, dtype=VERTEX_DTYPE)
        link_batch(pi, src.astype(VERTEX_DTYPE), dst.astype(VERTEX_DTYPE))
        compress_all(pi)
        forests.append(pi)
        local_edges.append(int(src.shape[0]))

    # Phase 2: binary-tree reduction of forests.
    rounds = 0
    stride = 1
    while stride < num_ranks:
        rounds += 1
        for receiver in range(0, num_ranks, 2 * stride):
            sender = receiver + stride
            if sender < num_ranks:
                comm.send(sender, receiver, forests[sender])
        comm.step()
        for receiver in range(0, num_ranks, 2 * stride):
            sender = receiver + stride
            if sender < num_ranks:
                incoming = comm.recv(receiver, src=sender)
                merge_forest(forests[receiver], incoming)
                forests[sender] = None  # sender's memory released
        stride *= 2

    # Phase 3: broadcast the exact labeling.
    final = comm.broadcast(0, forests[0])
    return DistCCResult(
        labels=final[0],
        num_ranks=num_ranks,
        comm_stats=comm.stats,
        local_edges_per_rank=local_edges,
        merge_rounds=rounds,
    )
