"""Distributed-memory substrate (the paper's first future-work direction).

The conclusions propose "generaliz[ing] the algorithm to distributed
memory environments".  This subpackage holds the message-passing layer
that generalisation is built on; the algorithmic half now lives in the
engine as :class:`repro.engine.backends.DistributedBackend`, which runs
every composed sampling × finish plan as BSP delta-exchange supersteps
(see ``docs/distributed.md``):

- :mod:`~repro.distributed.comm` — a BSP-style simulated communicator:
  ranks hold private state, exchange messages in supersteps, and every
  byte moved is accounted per rank pair and per superstep (the
  distributed analogue of the shared-memory machine's operation
  counters), with the collective shapes the backend's exchanges use
  (``alltoallv``, ``bcast_all``, ``allreduce_any``);
- :mod:`~repro.distributed.partition` — 1-D partitioners over ranks:
  block/hash edge splits plus the ``block_bounds`` / ``hash_owners``
  ownership maps shared with the backend's sharding;
- :mod:`~repro.distributed.dist_cc` — the original standalone
  forest-reduction algorithm, demoted to a deprecated shim over
  ``engine.run(backend=DistributedBackend(...))``; its
  :func:`~repro.distributed.dist_cc.merge_forest` subgraph-property
  merge (Sec. III-B) survives as a documented primitive.
"""

from repro.distributed.comm import CommStats, SimulatedComm
from repro.distributed.dist_cc import DistCCResult, distributed_components
from repro.distributed.partition import (
    block_bounds,
    hash_owners,
    partition_edges_block,
    partition_edges_hash,
)

__all__ = [
    "CommStats",
    "SimulatedComm",
    "DistCCResult",
    "distributed_components",
    "block_bounds",
    "hash_owners",
    "partition_edges_block",
    "partition_edges_hash",
]
