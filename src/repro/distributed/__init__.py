"""Distributed-memory Afforest (the paper's first future-work direction).

The conclusions propose "generaliz[ing] the algorithm to distributed
memory environments".  This subpackage builds that generalisation on a
simulated message-passing substrate:

- :mod:`~repro.distributed.comm` — a BSP-style simulated communicator:
  ranks hold private state, exchange messages in supersteps, and every
  byte moved is accounted (the distributed analogue of the shared-memory
  machine's operation counters);
- :mod:`~repro.distributed.partition` — 1-D edge partitioners (block and
  hash) over the ranks;
- :mod:`~repro.distributed.dist_cc` — the algorithm: each rank runs the
  Afforest core (link + compress) over its edge partition to produce a
  local parent forest, then forests merge up a reduction tree — merging
  two parent arrays is itself a ``link_batch`` over the pairs
  ``(v, other_pi[v])``, a direct application of the paper's subgraph-
  processing property (Sec. III-B: the "edges" of another rank's forest
  are just one more subgraph).
"""

from repro.distributed.comm import CommStats, SimulatedComm
from repro.distributed.dist_cc import DistCCResult, distributed_components
from repro.distributed.partition import partition_edges_block, partition_edges_hash

__all__ = [
    "CommStats",
    "SimulatedComm",
    "DistCCResult",
    "distributed_components",
    "partition_edges_block",
    "partition_edges_hash",
]
