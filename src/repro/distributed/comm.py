"""Simulated message-passing communicator (BSP supersteps).

Mirrors the slice of MPI the distributed substrate needs — point-to-point
array sends within a superstep, a broadcast, and the collective shapes
the delta-exchange supersteps are built from (``alltoallv``,
``bcast_all``, ``allreduce_any``) — while accounting every transferred
byte per rank pair and per superstep.  Ranks are simulated as explicit
state owned by a driver; the communicator is the *only* channel through
which data may cross ranks, so message accounting is complete by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

#: modelled wire size of one scalar reduction value (a convergence flag
#: or change count travelling the allreduce tree), in bytes.
SCALAR_BYTES = 8


@dataclass
class CommStats:
    """Traffic accounting for a simulated communicator."""

    messages: int = 0
    bytes_sent: int = 0
    supersteps: int = 0
    #: bytes per (src, dst) rank pair.
    by_pair: dict = field(default_factory=dict)
    #: bytes delivered by each completed superstep barrier, in order —
    #: the per-superstep traffic profile the trace spans annotate.
    step_bytes: list = field(default_factory=list)
    # bytes recorded since the last barrier (flushed by ``flush_step``).
    _open_bytes: int = 0

    def record(self, src: int, dst: int, nbytes: int) -> None:
        self.messages += 1
        self.bytes_sent += nbytes
        self._open_bytes += nbytes
        key = (src, dst)
        self.by_pair[key] = self.by_pair.get(key, 0) + nbytes

    def flush_step(self) -> int:
        """Close the current superstep: append (and return) its bytes."""
        self.supersteps += 1
        out = self._open_bytes
        self.step_bytes.append(out)
        self._open_bytes = 0
        return out

    def sent_by_rank(self, num_ranks: int) -> list:
        """Total bytes each rank put on the wire (from ``by_pair``)."""
        out = [0] * num_ranks
        for (src, _dst), nbytes in self.by_pair.items():
            if 0 <= src < num_ranks:
                out[src] += nbytes
        return out


class SimulatedComm:
    """A ``num_ranks``-way communicator with superstep semantics.

    Within a superstep, ranks enqueue sends; :meth:`step` delivers all
    pending messages at once (BSP barrier).  Receives drain the inbox in
    arrival order.
    """

    def __init__(self, num_ranks: int) -> None:
        if num_ranks < 1:
            raise ConfigurationError(f"num_ranks must be >= 1, got {num_ranks}")
        self.num_ranks = num_ranks
        self.stats = CommStats()
        self._outbox: list[tuple[int, int, np.ndarray]] = []
        self._inbox: list[list[tuple[int, np.ndarray]]] = [
            [] for _ in range(num_ranks)
        ]

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise ConfigurationError(
                f"rank {rank} out of range for {self.num_ranks}-rank world"
            )

    def send(self, src: int, dst: int, array: np.ndarray) -> None:
        """Enqueue an array from ``src`` to ``dst`` (delivered at the next
        superstep barrier).  The array is copied — ranks share no memory."""
        self._check_rank(src)
        self._check_rank(dst)
        payload = np.ascontiguousarray(array).copy()
        self.stats.record(src, dst, payload.nbytes)
        self._outbox.append((src, dst, payload))

    def step(self) -> None:
        """Superstep barrier: deliver all enqueued messages."""
        self.stats.flush_step()
        for src, dst, payload in self._outbox:
            self._inbox[dst].append((src, payload))
        self._outbox = []

    def recv(self, rank: int, src: int | None = None) -> np.ndarray:
        """Pop the next delivered message for ``rank`` (optionally from a
        specific source).  Raises if none is available."""
        self._check_rank(rank)
        inbox = self._inbox[rank]
        for i, (s, payload) in enumerate(inbox):
            if src is None or s == src:
                inbox.pop(i)
                return payload
        raise ConfigurationError(
            f"rank {rank} has no pending message"
            + (f" from {src}" if src is not None else "")
        )

    def pending(self, rank: int) -> int:
        """Number of delivered-but-unread messages for ``rank``."""
        self._check_rank(rank)
        return len(self._inbox[rank])

    def drain(self, rank: int) -> list[tuple[int, np.ndarray]]:
        """Pop every delivered message for ``rank`` as ``(src, payload)``."""
        self._check_rank(rank)
        out = self._inbox[rank]
        self._inbox[rank] = []
        return out

    def broadcast(self, root: int, array: np.ndarray) -> list[np.ndarray]:
        """Deliver ``array`` from ``root`` to every rank immediately
        (counted as ``num_ranks - 1`` messages); returns per-rank copies."""
        self._check_rank(root)
        out = []
        for dst in range(self.num_ranks):
            if dst == root:
                out.append(array)
                continue
            payload = np.ascontiguousarray(array).copy()
            self.stats.record(root, dst, payload.nbytes)
            out.append(payload)
        self.stats.flush_step()
        return out

    # -- collectives (one barrier each) ---------------------------------- #

    def alltoallv(
        self, parts: dict[tuple[int, int], np.ndarray]
    ) -> dict[tuple[int, int], np.ndarray]:
        """Personalised all-to-all: each ``(src, dst) -> array`` entry is
        sent in one shared superstep; returns the delivered copies keyed
        the same way.  Pairs with empty arrays cost nothing and are
        dropped from the result."""
        for (src, dst), array in parts.items():
            if array.size:
                self.send(src, dst, array)
        self.step()
        out: dict[tuple[int, int], np.ndarray] = {}
        for rank in range(self.num_ranks):
            for src, payload in self.drain(rank):
                out[(src, rank)] = payload
        return out

    def bcast_all(self, arrays: dict[int, np.ndarray]) -> None:
        """Every ``root -> array`` entry is broadcast to all other ranks
        inside one shared superstep (the owner-publication half of a
        delta exchange).  Empty arrays cost nothing."""
        for root, array in arrays.items():
            self._check_rank(root)
            if not array.size:
                continue
            for dst in range(self.num_ranks):
                if dst != root:
                    self.send(root, dst, array)
        self.step()
        for rank in range(self.num_ranks):
            self.drain(rank)

    def allreduce_any(self, flags: list[bool]) -> bool:
        """Reduce one boolean per rank to a replicated OR.

        Modelled as a root gather plus a broadcast — ``2 (R - 1)``
        scalar-sized messages over two barriers; a single-rank world
        reduces locally for free.
        """
        if len(flags) != self.num_ranks:
            raise ConfigurationError(
                f"expected {self.num_ranks} flags, got {len(flags)}"
            )
        if self.num_ranks == 1:
            return bool(flags[0])
        token = np.empty(SCALAR_BYTES, dtype=np.uint8)
        for rank in range(1, self.num_ranks):
            self.send(rank, 0, token)
        self.step()
        self.drain(0)
        result = any(flags)
        for rank in range(1, self.num_ranks):
            self.send(0, rank, token)
        self.step()
        for rank in range(1, self.num_ranks):
            self.drain(rank)
        return result
