"""Simulated message-passing communicator (BSP supersteps).

Mirrors the slice of MPI the distributed algorithm needs — point-to-point
array sends within a superstep and a broadcast — while accounting every
transferred byte per rank pair.  Ranks are simulated as explicit state
owned by a driver; the communicator is the *only* channel through which
data may cross ranks, so message accounting is complete by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class CommStats:
    """Traffic accounting for a simulated communicator."""

    messages: int = 0
    bytes_sent: int = 0
    supersteps: int = 0
    #: bytes per (src, dst) rank pair.
    by_pair: dict = field(default_factory=dict)

    def record(self, src: int, dst: int, nbytes: int) -> None:
        self.messages += 1
        self.bytes_sent += nbytes
        key = (src, dst)
        self.by_pair[key] = self.by_pair.get(key, 0) + nbytes


class SimulatedComm:
    """A ``num_ranks``-way communicator with superstep semantics.

    Within a superstep, ranks enqueue sends; :meth:`step` delivers all
    pending messages at once (BSP barrier).  Receives drain the inbox in
    arrival order.
    """

    def __init__(self, num_ranks: int) -> None:
        if num_ranks < 1:
            raise ConfigurationError(f"num_ranks must be >= 1, got {num_ranks}")
        self.num_ranks = num_ranks
        self.stats = CommStats()
        self._outbox: list[tuple[int, int, np.ndarray]] = []
        self._inbox: list[list[tuple[int, np.ndarray]]] = [
            [] for _ in range(num_ranks)
        ]

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise ConfigurationError(
                f"rank {rank} out of range for {self.num_ranks}-rank world"
            )

    def send(self, src: int, dst: int, array: np.ndarray) -> None:
        """Enqueue an array from ``src`` to ``dst`` (delivered at the next
        superstep barrier).  The array is copied — ranks share no memory."""
        self._check_rank(src)
        self._check_rank(dst)
        payload = np.ascontiguousarray(array).copy()
        self.stats.record(src, dst, payload.nbytes)
        self._outbox.append((src, dst, payload))

    def step(self) -> None:
        """Superstep barrier: deliver all enqueued messages."""
        self.stats.supersteps += 1
        for src, dst, payload in self._outbox:
            self._inbox[dst].append((src, payload))
        self._outbox = []

    def recv(self, rank: int, src: int | None = None) -> np.ndarray:
        """Pop the next delivered message for ``rank`` (optionally from a
        specific source).  Raises if none is available."""
        self._check_rank(rank)
        inbox = self._inbox[rank]
        for i, (s, payload) in enumerate(inbox):
            if src is None or s == src:
                inbox.pop(i)
                return payload
        raise ConfigurationError(
            f"rank {rank} has no pending message"
            + (f" from {src}" if src is not None else "")
        )

    def pending(self, rank: int) -> int:
        """Number of delivered-but-unread messages for ``rank``."""
        self._check_rank(rank)
        return len(self._inbox[rank])

    def broadcast(self, root: int, array: np.ndarray) -> list[np.ndarray]:
        """Deliver ``array`` from ``root`` to every rank immediately
        (counted as ``num_ranks - 1`` messages); returns per-rank copies."""
        self._check_rank(root)
        out = []
        for dst in range(self.num_ranks):
            if dst == root:
                out.append(array)
                continue
            payload = np.ascontiguousarray(array).copy()
            self.stats.record(root, dst, payload.nbytes)
            out.append(payload)
        self.stats.supersteps += 1
        return out
