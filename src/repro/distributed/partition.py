"""Edge partitioners for the distributed algorithm.

Both return one ``(src, dst)`` pair of arrays per rank, together covering
each undirected edge exactly once (the distributed algorithm needs no
mirror edges: rank-local link is orientation-agnostic).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph


def _check(num_ranks: int) -> None:
    if num_ranks < 1:
        raise ConfigurationError(f"num_ranks must be >= 1, got {num_ranks}")


def partition_edges_block(
    graph: CSRGraph, num_ranks: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Contiguous blocks of the (source-sorted) undirected edge list.

    Preserves source locality per rank — the distributed analogue of
    row-block partitioning, and like it (Fig. 6) the weaker choice for
    early convergence; included as the baseline partitioner.
    """
    _check(num_ranks)
    src, dst = graph.undirected_edge_array()
    bounds = np.linspace(0, src.shape[0], num_ranks + 1).astype(np.int64)
    return [
        (src[bounds[r] : bounds[r + 1]], dst[bounds[r] : bounds[r + 1]])
        for r in range(num_ranks)
    ]


def partition_edges_hash(
    graph: CSRGraph, num_ranks: int, *, seed: int = 0
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Pseudo-random edge assignment (hash of the edge id).

    Spreads every vertex's edges across ranks, so each rank's local forest
    already approximates the global components — the distributed
    counterpart of neighbour sampling's evenly-spread edge budget.
    """
    _check(num_ranks)
    src, dst = graph.undirected_edge_array()
    rng = np.random.default_rng(seed)
    owner = rng.integers(0, num_ranks, size=src.shape[0])
    return [(src[owner == r], dst[owner == r]) for r in range(num_ranks)]
