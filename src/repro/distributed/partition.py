"""Edge partitioners for the distributed algorithm.

Both return one ``(src, dst)`` pair of arrays per rank, together covering
each undirected edge exactly once (the distributed algorithm needs no
mirror edges: rank-local link is orientation-agnostic).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph


def _check(num_ranks: int) -> None:
    if num_ranks < 1:
        raise ConfigurationError(f"num_ranks must be >= 1, got {num_ranks}")


def block_bounds(total: int, num_ranks: int) -> np.ndarray:
    """Even 1-D block boundaries: ``num_ranks + 1`` cut points over
    ``[0, total)``.  Used both for contiguous edge blocks and for the
    vertex-ownership map of the delta-exchange supersteps."""
    _check(num_ranks)
    return np.linspace(0, total, num_ranks + 1).astype(np.int64)


def hash_owners(
    total: int, num_ranks: int, *, seed: int = 0
) -> np.ndarray:
    """Pseudo-random owner rank per flat position (hash of the id).

    The shared owner-assignment of :func:`partition_edges_hash` and the
    ``DistributedBackend``'s hash sharding mode — one seeded draw, so the
    two layers agree on which rank holds which edge."""
    _check(num_ranks)
    rng = np.random.default_rng(seed)
    return rng.integers(0, num_ranks, size=total)


def partition_edges_block(
    graph: CSRGraph, num_ranks: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Contiguous blocks of the (source-sorted) undirected edge list.

    Preserves source locality per rank — the distributed analogue of
    row-block partitioning, and like it (Fig. 6) the weaker choice for
    early convergence; included as the baseline partitioner.
    """
    src, dst = graph.undirected_edge_array()
    bounds = block_bounds(src.shape[0], num_ranks)
    return [
        (src[bounds[r] : bounds[r + 1]], dst[bounds[r] : bounds[r + 1]])
        for r in range(num_ranks)
    ]


def partition_edges_hash(
    graph: CSRGraph, num_ranks: int, *, seed: int = 0
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Pseudo-random edge assignment (hash of the edge id).

    Spreads every vertex's edges across ranks, so each rank's local forest
    already approximates the global components — the distributed
    counterpart of neighbour sampling's evenly-spread edge budget.
    """
    src, dst = graph.undirected_edge_array()
    owner = hash_owners(src.shape[0], num_ranks, seed=seed)
    return [(src[owner == r], dst[owner == r]) for r in range(num_ranks)]
