"""Subgraph sampling strategies: a miniature of the paper's Fig. 6.

Replays all four partitioning strategies (row / uniform / neighbour /
spanning-forest-optimal) through Afforest's link+compress pipeline on a
web-graph proxy and prints the linkage and coverage convergence tables —
showing why neighbour sampling is the one Afforest uses.

Run:  python examples/sampling_strategies.py
"""

from __future__ import annotations

from repro.analysis.convergence import convergence_curve
from repro.core.strategies import STRATEGIES
from repro.generators import web_graph


CHECKPOINTS = [2.0, 5.0, 10.0, 20.0, 50.0, 100.0]


def main() -> None:
    print("generating web-graph proxy (2**13 pages)...")
    graph = web_graph(1 << 13, seed=1)
    print(
        f"  {graph.num_vertices} pages, {graph.num_edges} links"
    )

    curves = {}
    for name, strategy in STRATEGIES.items():
        curves[name] = convergence_curve(
            graph, strategy(graph), strategy_name=name, resolution=50
        )

    two_rounds_pct = (
        100.0 * 2 * graph.num_vertices / graph.num_directed_edges
    )
    print(
        f"\ntwo neighbour rounds touch only "
        f"{two_rounds_pct:.1f}% of the directed edges\n"
    )

    for measure in ("linkage", "coverage"):
        print(f"{measure} by % of edges processed:")
        header = "  strategy " + "".join(f"{p:>9.0f}%" for p in CHECKPOINTS)
        print(header)
        for name, curve in curves.items():
            at = getattr(curve, f"{measure}_at")
            row = "".join(f"{at(p):>10.3f}" for p in CHECKPOINTS)
            print(f"  {name:<9}{row}")
        print()

    nb = curves["neighbor"]
    print(
        f"after two neighbour rounds: linkage "
        f"{nb.linkage_at(two_rounds_pct):.1%}, coverage "
        f"{nb.coverage_at(two_rounds_pct):.1%} "
        f"(paper reports ~83% / ~80% on its web graph)"
    )


if __name__ == "__main__":
    main()
