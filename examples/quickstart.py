"""Quickstart: connected components with Afforest in five minutes.

Builds a small multi-component graph by hand, runs every algorithm in the
library on it, and shows the detailed result object Afforest returns.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Build a graph.  GraphBuilder handles symmetrization and CSR
    #    assembly; you can also use repro.from_edge_list / from_edge_array
    #    or any generator from repro.generators.
    # ------------------------------------------------------------------ #
    builder = repro.GraphBuilder(14)
    builder.add_path([0, 1, 2, 3, 4])        # a path component
    builder.add_cycle([5, 6, 7])             # a triangle
    builder.add_clique([8, 9, 10, 11])       # a clique
    builder.add_edge(12, 13)                 # a pair
    graph = builder.build()
    print(f"graph: {graph}")

    # ------------------------------------------------------------------ #
    # 2. One-liner: component labels via Afforest (the default).
    # ------------------------------------------------------------------ #
    labels = repro.connected_components(graph)
    print(f"labels: {labels.tolist()}")
    print(f"components: {len(np.unique(labels))}")

    # ------------------------------------------------------------------ #
    # 3. The detailed result: work counters show how little of the graph
    #    Afforest actually touched.
    # ------------------------------------------------------------------ #
    result = repro.afforest(graph, neighbor_rounds=2)
    print(
        f"afforest: {result.num_components} components | "
        f"sampled {result.edges_sampled} edge slots, "
        f"final-phase {result.edges_final}, skipped {result.edges_skipped} "
        f"({result.skip_fraction:.0%} of the remainder)"
    )

    # ------------------------------------------------------------------ #
    # 4. Every algorithm agrees on the partition (labels may differ by a
    #    renaming; canonical form compares partitions).
    # ------------------------------------------------------------------ #
    from repro.analysis import canonical_labels

    reference = canonical_labels(labels)
    for algorithm in ("sv", "lp", "bfs", "dobfs", "sequential"):
        other = canonical_labels(
            repro.connected_components(graph, algorithm)
        )
        status = "agrees" if np.array_equal(other, reference) else "DISAGREES"
        print(f"  {algorithm:>10}: {status}")

    # ------------------------------------------------------------------ #
    # 5. Scale up: a Kronecker (Graph500) graph with 2**14 vertices.
    # ------------------------------------------------------------------ #
    big = repro.generators.kronecker_graph(scale=14, edge_factor=16, seed=0)
    result = repro.afforest(big)
    print(
        f"\nkron scale 14: {big.num_vertices} vertices, {big.num_edges} edges -> "
        f"{result.num_components} components "
        f"(giant label {result.largest_label}, "
        f"{result.edges_skipped} edge slots skipped)"
    )


if __name__ == "__main__":
    main()
