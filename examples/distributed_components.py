"""Distributed-memory connected components (the paper's future work).

Demonstrates the engine's distributed substrate: edges are sharded
across simulated ranks and every plan runs as BSP supersteps that
exchange only changed-label deltas (index+value pairs, switching to
bitmap or dense encodings as density grows — see docs/distributed.md).
The backend reports merge_rounds-style superstep counts and meters every
byte per rank pair, so the communication behaviour is measurable.

Shows the property that makes the distributed extension attractive:
traffic tracks the labels that *changed* (O(n)-ish per solve), not the
edge count, and stays far below shipping whole parent arrays around.

Run:  python examples/distributed_components.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro import engine
from repro.engine.backends import DistributedBackend
from repro.generators import uniform_random_graph


def solve(graph, ranks: int, partition: str = "hash"):
    """One delta-exchange fastsv solve; returns (labels, comm stats)."""
    backend = DistributedBackend(ranks=ranks, partition=partition)
    result = engine.run(graph, plan="none+fastsv", backend=backend)
    return result.labels, backend.comm.stats


def main() -> None:
    graph = uniform_random_graph(1 << 14, edge_factor=16, seed=0)
    reference = repro.connected_components(graph)
    print(
        f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges\n"
    )

    # ------------------------------------------------------------------ #
    # 1. World sizes: exactness everywhere, bounded superstep counts.
    # ------------------------------------------------------------------ #
    print(
        f"{'ranks':>6} {'merge_rounds':>13} {'traffic_MB':>11} "
        f"{'bytes/vertex':>13} {'exact':>6}"
    )
    for ranks in (1, 2, 4, 8, 16):
        labels, stats = solve(graph, ranks)
        exact = bool(
            np.array_equal(
                repro.analysis.canonical_labels(labels),
                repro.analysis.canonical_labels(reference),
            )
        )
        per_vertex = stats.bytes_sent / graph.num_vertices
        print(
            f"{ranks:>6} {stats.supersteps:>13} "
            f"{stats.bytes_sent / 1e6:>11.2f} "
            f"{per_vertex:>13.1f} {str(exact):>6}"
        )

    # ------------------------------------------------------------------ #
    # 2. Traffic tracks label churn, not edge density.
    # ------------------------------------------------------------------ #
    print("\ntraffic vs density (8 ranks):")
    for ef in (4, 16, 64):
        g = uniform_random_graph(1 << 13, edge_factor=ef, seed=1)
        _, stats = solve(g, 8)
        print(
            f"  edge_factor {ef:>3}: {g.num_edges:>8} edges -> "
            f"{stats.bytes_sent / 1e6:.2f} MB moved"
        )

    # ------------------------------------------------------------------ #
    # 3. Partition modes: hash sharding balances per-rank edge work.
    # ------------------------------------------------------------------ #
    print("\npartition balance (8 ranks, directed edges per rank):")
    for mode in ("block", "hash"):
        backend = DistributedBackend(ranks=8, partition=mode)
        engine.run(graph, plan="none+fastsv", backend=backend)
        counts = backend.shard_sizes(graph)
        print(
            f"  {mode:>5}: min {min(counts)}, max {max(counts)}, "
            f"imbalance {max(counts) / max(min(counts), 1):.2f}"
        )


if __name__ == "__main__":
    main()
