"""Distributed-memory connected components (the paper's future work).

Demonstrates the forest-reduction algorithm built on the paper's
subgraph-processing property: each simulated rank runs the Afforest core
on its edge partition, then forests merge up a binary tree — another
rank's parent array is just one more subgraph to ``link``.

Shows the property that makes the distributed extension attractive:
communication volume is O(|V| log R), *independent of |E|*.

Run:  python examples/distributed_components.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.distributed import (
    distributed_components,
    partition_edges_block,
    partition_edges_hash,
)
from repro.generators import uniform_random_graph


def main() -> None:
    graph = uniform_random_graph(1 << 14, edge_factor=16, seed=0)
    reference = repro.connected_components(graph)
    print(
        f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges\n"
    )

    # ------------------------------------------------------------------ #
    # 1. World sizes: exactness everywhere, log-depth reduction tree.
    # ------------------------------------------------------------------ #
    print(f"{'ranks':>6} {'merge_rounds':>13} {'traffic_MB':>11} {'bytes/vertex':>13} {'exact':>6}")
    for ranks in (1, 2, 4, 8, 16):
        result = distributed_components(graph, ranks)
        exact = bool(
            np.array_equal(
                repro.analysis.canonical_labels(result.labels),
                repro.analysis.canonical_labels(reference),
            )
        )
        print(
            f"{ranks:>6} {result.merge_rounds:>13} "
            f"{result.comm_stats.bytes_sent / 1e6:>11.2f} "
            f"{result.bytes_per_vertex:>13.1f} {str(exact):>6}"
        )

    # ------------------------------------------------------------------ #
    # 2. Traffic is independent of edge density.
    # ------------------------------------------------------------------ #
    print("\ntraffic vs density (8 ranks):")
    for ef in (4, 16, 64):
        g = uniform_random_graph(1 << 13, edge_factor=ef, seed=1)
        result = distributed_components(g, 8)
        print(
            f"  edge_factor {ef:>3}: {g.num_edges:>8} edges -> "
            f"{result.comm_stats.bytes_sent / 1e6:.2f} MB moved"
        )

    # ------------------------------------------------------------------ #
    # 3. Partitioner comparison: hash partitioning balances rank work.
    # ------------------------------------------------------------------ #
    print("\npartitioner balance (8 ranks, edges per rank):")
    for name, partitioner in (
        ("block", partition_edges_block),
        ("hash", partition_edges_hash),
    ):
        result = distributed_components(graph, 8, partitioner=partitioner)
        counts = result.local_edges_per_rank
        print(
            f"  {name:>5}: min {min(counts)}, max {max(counts)}, "
            f"imbalance {max(counts) / max(min(counts), 1):.2f}"
        )


if __name__ == "__main__":
    main()
