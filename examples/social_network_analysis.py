"""Social-network analysis: components of a Twitter-like follower graph.

The paper's motivating workload: large-scale social networks have one
giant component plus millions of satellites, and CC identification is the
entry point for downstream analytics (community detection, influence
propagation run per-component).  This example:

1. generates a power-law follower-graph proxy (Chung–Lu);
2. profiles the component structure (giant fraction, satellite census);
3. compares Afforest against the baselines on wall-clock and work;
4. shows how large-component skipping exploits exactly this structure.

Run:  python examples/social_network_analysis.py
"""

from __future__ import annotations

import time

import numpy as np

import repro
from repro.baselines import dobfs_cc, label_propagation, shiloach_vishkin
from repro.generators import chung_lu_graph
from repro.graph.properties import component_census, degree_statistics


def main() -> None:
    print("generating follower-graph proxy (Chung-Lu, 2**16 users)...")
    graph = chung_lu_graph(
        1 << 16, exponent=2.1, mean_degree=24.0, seed=7
    )
    deg = degree_statistics(graph)
    print(
        f"  {graph.num_vertices} users, {graph.num_edges} follow edges | "
        f"degree mean {deg.mean:.1f}, max {deg.max} (hubs!)"
    )

    # ------------------------------------------------------------------ #
    # Component structure: the giant + satellites.
    # ------------------------------------------------------------------ #
    census = component_census(graph)
    sizes = census.sizes
    print(
        f"  {census.num_components} components; giant covers "
        f"{census.largest_fraction:.1%} of users"
    )
    satellite = sizes[1:]
    if satellite.size:
        print(
            f"  satellites: {satellite.size} components, "
            f"largest {int(satellite[0])}, median {int(np.median(satellite))}"
        )

    # ------------------------------------------------------------------ #
    # Algorithm comparison.
    # ------------------------------------------------------------------ #
    print("\nalgorithm comparison:")
    runs = {
        "afforest": lambda: repro.afforest(graph),
        "afforest-noskip": lambda: repro.afforest(graph, skip_largest=False),
        "sv": lambda: shiloach_vishkin(graph),
        "lp": lambda: label_propagation(graph),
        "dobfs": lambda: dobfs_cc(graph),
    }
    timings = {}
    for name, fn in runs.items():
        t0 = time.perf_counter()
        fn()
        timings[name] = time.perf_counter() - t0
        print(f"  {name:>16}: {timings[name] * 1000:8.1f} ms")
    print(
        f"  afforest speedup over SV: "
        f"{timings['sv'] / timings['afforest']:.1f}x"
    )

    # ------------------------------------------------------------------ #
    # Why: the skip heuristic removes the giant component's edges from
    # the final phase entirely.
    # ------------------------------------------------------------------ #
    result = repro.afforest(graph)
    print(
        f"\nwork profile: sampled {result.edges_sampled} slots "
        f"({result.neighbor_rounds} rounds), final {result.edges_final}, "
        f"skipped {result.edges_skipped} "
        f"= {result.skip_fraction:.1%} of the post-sampling work"
    )

    # ------------------------------------------------------------------ #
    # Downstream use: per-component analytics on the satellites.
    # ------------------------------------------------------------------ #
    labels = result.labels
    giant = result.largest_label
    satellite_users = np.nonzero(labels != giant)[0]
    print(
        f"\ndownstream: {satellite_users.size} users outside the giant "
        f"component would be routed to per-community processing"
    )


if __name__ == "__main__":
    main()
