"""A tour of the simulated parallel machine.

Runs Afforest and Shiloach–Vishkin on the instrumented p-worker machine,
then walks through everything the substrate measures: per-phase work and
span, CAS contention, the memory-access trace behind the paper's Fig. 7,
and modeled strong scaling (Fig. 8b's methodology).

Run:  python examples/simulated_machine_tour.py
"""

from __future__ import annotations

from repro import engine
from repro.analysis.memaccess import reduce_trace
from repro.engine import SimulatedBackend
from repro.generators import uniform_random_graph
from repro.parallel import MemoryTrace, SimulatedMachine, WorkSpanModel


def afforest_simulated(graph, machine, **kwargs):
    return engine.run(
        "afforest", graph, backend=SimulatedBackend(machine), **kwargs
    )


def sv_simulated(graph, machine):
    return engine.run("sv", graph, backend=SimulatedBackend(machine))


def main() -> None:
    graph = uniform_random_graph(1 << 10, edge_factor=8, seed=0)
    print(
        f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges "
        f"(single giant component)\n"
    )

    # ------------------------------------------------------------------ #
    # 1. Run Afforest on an 8-worker machine with full tracing.
    # ------------------------------------------------------------------ #
    trace = MemoryTrace()
    machine = SimulatedMachine(8, schedule="cyclic", trace=trace)
    result = afforest_simulated(graph, machine)
    print("afforest phases (work = shared ops, span = busiest worker):")
    for ph in machine.stats.phases:
        print(
            f"  {ph.label:>3}: work {ph.work:>7} span {ph.span:>7} "
            f"imbalance {ph.imbalance:4.2f} cas_fail {ph.cas_failures}"
        )
    print(
        f"  -> {result.num_components} components; "
        f"{result.edges_skipped} edge slots skipped by Theorem 3\n"
    )

    # ------------------------------------------------------------------ #
    # 2. The Fig. 7 reduction: access structure per phase.
    # ------------------------------------------------------------------ #
    summary = reduce_trace(trace.finalize(), graph.num_vertices)
    print("pi access structure (sequentiality 1.0 = perfect streaming):")
    for ph in summary.phases:
        print(
            f"  {ph.label:>3}: {ph.events:>7} events, "
            f"sequentiality {ph.sequentiality:4.2f}, "
            f"root-region share {ph.low_address_fraction:4.2f}"
        )

    # ------------------------------------------------------------------ #
    # 3. SV on the same machine: more phases, more work, scattered access.
    # ------------------------------------------------------------------ #
    sv_machine = SimulatedMachine(8, schedule="cyclic")
    sv = sv_simulated(graph, sv_machine)
    print(
        f"\nshiloach-vishkin: {sv.iterations} iterations, total work "
        f"{sv_machine.stats.total_work} vs afforest {machine.stats.total_work} "
        f"({sv_machine.stats.total_work / machine.stats.total_work:.1f}x more)"
    )

    # ------------------------------------------------------------------ #
    # 4. Modeled strong scaling (Fig. 8b methodology).
    # ------------------------------------------------------------------ #
    model = WorkSpanModel(tau=1.0, beta=128.0)
    print("\nmodeled scaling (time units, lower is better):")
    print(f"{'workers':>8} {'afforest':>10} {'sv':>10}")
    base_af = base_sv = None
    for p in (1, 2, 4, 8, 16):
        m_af = SimulatedMachine(p, schedule="cyclic")
        afforest_simulated(graph, m_af)
        m_sv = SimulatedMachine(p, schedule="cyclic")
        sv_simulated(graph, m_sv)
        t_af, t_sv = model.time(m_af.stats), model.time(m_sv.stats)
        base_af = base_af or t_af
        base_sv = base_sv or t_sv
        print(
            f"{p:>8} {t_af:>10.0f} {t_sv:>10.0f}   "
            f"(speedups {base_af / t_af:4.1f}x / {base_sv / t_sv:4.1f}x)"
        )


if __name__ == "__main__":
    main()
