"""Streaming connectivity: the link primitive as an online operation.

Afforest's ``link`` works on any edge order (Theorem 1), which makes it an
edge-insertion operation: this example maintains connectivity over a live
edge stream — the "did this transaction connect two fraud rings?" workload
— answering queries between insertions, with periodic compression keeping
queries fast.

Run:  python examples/streaming_connectivity.py
"""

from __future__ import annotations

import numpy as np

from repro.core import IncrementalConnectivity
from repro.generators import uniform_random_graph


def main() -> None:
    rng = np.random.default_rng(5)
    n = 50_000
    inc = IncrementalConnectivity(n, compress_every=8192)
    print(f"universe: {n} accounts, edges streaming in...\n")

    # ------------------------------------------------------------------ #
    # 1. Stream edges in bursts; watch the component structure coalesce.
    # ------------------------------------------------------------------ #
    print(f"{'edges_seen':>11} {'components':>11} {'giant_frac':>11}")
    for burst in range(8):
        m = 10_000
        src = rng.integers(0, n, size=m)
        dst = rng.integers(0, n, size=m)
        inc.add_edges(src, dst)
        labels = inc.labels()
        giant = int(np.bincount(labels).max())
        print(
            f"{inc.edges_inserted:>11} {inc.num_components:>11} "
            f"{giant / n:>11.1%}"
        )

    # ------------------------------------------------------------------ #
    # 2. Point queries between insertions.
    # ------------------------------------------------------------------ #
    a, b = 17, 23_042
    print(f"\nconnected({a}, {b})? {inc.connected(a, b)}")
    if not inc.connected(a, b):
        inc.add_edge(a, b)
        print(f"after linking them directly: {inc.connected(a, b)}")

    # ------------------------------------------------------------------ #
    # 3. Single-edge trickle with merge detection.
    # ------------------------------------------------------------------ #
    merges = 0
    for _ in range(1000):
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if inc.add_edge(u, v):
            merges += 1
    print(
        f"\n1000 trickled edges caused {merges} merges "
        f"(most endpoints already share the giant component)"
    )
    print(f"final: {inc.num_components} components")


if __name__ == "__main__":
    main()
