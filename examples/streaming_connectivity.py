"""Streaming connectivity: the link primitive as an online operation.

Afforest's ``link`` works on any edge order (Theorem 1), which makes it an
edge-insertion operation.  This example shows the same workload — "did
this transaction connect two fraud rings?" — at two levels:

1. the **low-level** :class:`~repro.core.IncrementalConnectivity`
   structure, where your code owns the loop and calls link/compress
   directly, and
2. the **serving layer** (:mod:`repro.serve`), where a solved
   :class:`~repro.serve.ConnectivityService` behind a batching
   :class:`~repro.serve.ConnectivityServer` answers the same queries
   from immutable epoch snapshots while absorbing the update stream —
   and every published epoch is bit-identical to a from-scratch batch
   re-solve.

Run:  python examples/streaming_connectivity.py
"""

from __future__ import annotations

import numpy as np

from repro.core import IncrementalConnectivity
from repro.generators import uniform_random_graph
from repro.serve import ConnectivityServer, ConnectivityService


def low_level_stream() -> None:
    """Own the loop: IncrementalConnectivity, link by link."""
    rng = np.random.default_rng(5)
    n = 50_000
    inc = IncrementalConnectivity(n, compress_every=8192)
    print(f"universe: {n} accounts, edges streaming in...\n")

    # ------------------------------------------------------------------ #
    # 1. Stream edges in bursts; watch the component structure coalesce.
    # ------------------------------------------------------------------ #
    print(f"{'edges_seen':>11} {'components':>11} {'giant_frac':>11}")
    for burst in range(8):
        m = 10_000
        src = rng.integers(0, n, size=m)
        dst = rng.integers(0, n, size=m)
        inc.add_edges(src, dst)
        labels = inc.labels()
        giant = int(np.bincount(labels).max())
        print(
            f"{inc.edges_inserted:>11} {inc.num_components:>11} "
            f"{giant / n:>11.1%}"
        )

    # ------------------------------------------------------------------ #
    # 2. Point queries between insertions.
    # ------------------------------------------------------------------ #
    a, b = 17, 23_042
    print(f"\nconnected({a}, {b})? {inc.connected(a, b)}")
    if not inc.connected(a, b):
        inc.add_edge(a, b)
        print(f"after linking them directly: {inc.connected(a, b)}")

    # ------------------------------------------------------------------ #
    # 3. Single-edge trickle with merge detection.
    # ------------------------------------------------------------------ #
    merges = 0
    for _ in range(1000):
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if inc.add_edge(u, v):
            merges += 1
    print(
        f"\n1000 trickled edges caused {merges} merges "
        f"(most endpoints already share the giant component)"
    )
    print(f"final: {inc.num_components} components")


def serving_layer() -> None:
    """Same workload, as a service: solve once, serve epoch snapshots."""
    rng = np.random.default_rng(6)
    graph = uniform_random_graph(20_000, num_edges=30_000, seed=6)
    n = graph.num_vertices

    # The service solves the base graph once (any plan/backend), then
    # keeps a compressed label array + size census hot; readers always
    # see a complete epoch snapshot, never a half-updated structure.
    service = ConnectivityService(
        graph, recompress_every=4096, dataset="fraud-accounts"
    )
    print(
        f"\nserving layer: solved {n} accounts once "
        f"({service.num_components} components at epoch 0)"
    )

    with ConnectivityServer(service, max_batch=64) as server:
        # Interleave query batches with update bursts.  The worker loop
        # coalesces queued queries into single vectorized gathers.
        futures = []
        for _ in range(40):
            us = rng.integers(0, n, size=64)
            vs = rng.integers(0, n, size=64)
            futures.append(server.submit_same(us, vs))
            src = rng.integers(0, n, size=512)
            dst = rng.integers(0, n, size=512)
            server.submit_update(src, dst)
        connected_frac = float(
            np.mean([f.result().mean() for f in futures])
        )
        # Point reads go through the same queue (and the same snapshot).
        a, b = 17, 11_042
        same = server.same_component(a, b)
        size_a = server.component_size(a)
        server.submit_refresh().result()  # publish the tail of the stream
        print(
            f"40 query batches between update bursts: "
            f"{connected_frac:.0%} of random pairs connected"
        )
        print(f"same_component({a}, {b})? {same}; |component({a})| = {size_a}")

    counters = service.metrics.counters_snapshot()
    print(
        f"epochs published: {service.epoch}, "
        f"stream edges absorbed: {counters['serve_edges_inserted']}, "
        f"queries coalesced: {counters.get('serve_coalesced', 0)}"
    )

    # The serving invariant: the latest epoch's labels are bit-identical
    # to re-solving base graph + absorbed stream from scratch.
    resolved = service.batch_resolve()
    identical = bool(np.array_equal(service.labels(), resolved))
    print(f"epoch labels identical to batch re-solve? {identical}")


def main() -> None:
    low_level_stream()
    serving_layer()


if __name__ == "__main__":
    main()
