"""Road-network resilience: connectivity under link failures.

High-diameter planar networks are the tree-hooking algorithms' home turf:
traversal- and propagation-based CC methods pay for the diameter, while
Afforest/SV compress it away.  This example simulates progressive road
closures and tracks how the network fragments — recomputing components
after each closure wave, the way a routing service would.

Run:  python examples/road_network_resilience.py
"""

from __future__ import annotations

import time

import numpy as np

import repro
from repro.baselines import label_propagation
from repro.generators import road_network_graph
from repro.graph.builder import build_csr
from repro.graph.coo import EdgeList
from repro.graph.properties import pseudo_diameter


def drop_edges(graph, fraction: float, rng: np.random.Generator):
    """Remove a random fraction of undirected edges (road closures)."""
    src, dst = graph.undirected_edge_array()
    keep = rng.random(src.shape[0]) >= fraction
    return build_csr(
        EdgeList(graph.num_vertices, src[keep], dst[keep])
    )


def main() -> None:
    rng = np.random.default_rng(11)
    print("generating road network proxy (256x256 grid)...")
    graph = road_network_graph(256, 256, drop=0.03, highway=0.0002, seed=3)
    print(
        f"  {graph.num_vertices} junctions, {graph.num_edges} road segments, "
        f"diameter ~{pseudo_diameter(graph)}"
    )

    # ------------------------------------------------------------------ #
    # Why diameter matters: label propagation pays for every hop.
    # ------------------------------------------------------------------ #
    t0 = time.perf_counter()
    lp = label_propagation(graph)
    t_lp = time.perf_counter() - t0
    t0 = time.perf_counter()
    af = repro.afforest(graph)
    t_af = time.perf_counter() - t0
    print(
        f"\nbaseline check: LP needed {lp.iterations} iterations "
        f"({t_lp * 1000:.0f} ms); afforest {t_af * 1000:.0f} ms "
        f"({t_lp / t_af:.0f}x faster on this topology)"
    )

    # ------------------------------------------------------------------ #
    # Progressive failure: close 5%, 10%, ... of roads and re-solve.
    # ------------------------------------------------------------------ #
    print("\nprogressive closures:")
    print(f"{'closed':>8} {'components':>12} {'reachable_frac':>15} {'solve_ms':>9}")
    for fraction in (0.05, 0.10, 0.20, 0.30, 0.40):
        damaged = drop_edges(graph, fraction, rng)
        t0 = time.perf_counter()
        result = repro.afforest(damaged)
        ms = (time.perf_counter() - t0) * 1000
        labels = result.labels
        giant = np.bincount(labels).max()
        print(
            f"{fraction:8.0%} {result.num_components:12d} "
            f"{giant / damaged.num_vertices:15.1%} {ms:9.1f}"
        )

    # ------------------------------------------------------------------ #
    # Point-to-point reachability after heavy damage.
    # ------------------------------------------------------------------ #
    damaged = drop_edges(graph, 0.35, rng)
    labels = repro.connected_components(damaged)
    depot = 0
    deliveries = rng.integers(0, damaged.num_vertices, size=10)
    reachable = [int(v) for v in deliveries if labels[v] == labels[depot]]
    print(
        f"\nafter 35% closures, {len(reachable)}/10 sampled delivery "
        f"points remain reachable from the depot"
    )


if __name__ == "__main__":
    main()
