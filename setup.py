"""Setup shim for environments without PEP-517 build isolation.

``pip install -e .`` requires the ``wheel`` package for editable builds on
older pips; ``python setup.py develop`` (or a plain ``site-packages`` .pth
entry) achieves the same on offline machines.  Configuration lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
